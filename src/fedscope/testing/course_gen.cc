#include "fedscope/testing/course_gen.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "fedscope/data/synthetic_cifar.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/personalization/ditto.h"
#include "fedscope/personalization/fedbn.h"
#include "fedscope/personalization/pfedme.h"
#include "fedscope/sim/device_profile.h"
#include "fedscope/util/logging.h"
#include "fedscope/util/rng.h"

namespace fedscope {
namespace testing {
namespace {

template <typename T>
T PickOne(Rng* rng, const std::vector<T>& choices) {
  return choices[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int>(choices.size()) - 1))];
}

Strategy ParseStrategy(const std::string& name) {
  if (name == "sync_vanilla") return Strategy::kSyncVanilla;
  if (name == "sync_overselect") return Strategy::kSyncOverselect;
  if (name == "async_goal") return Strategy::kAsyncGoal;
  if (name == "async_time") return Strategy::kAsyncTime;
  FS_CHECK(false) << "unknown strategy " << name;
  return Strategy::kSyncVanilla;
}

bool OneOf(const std::string& v, std::initializer_list<const char*> allowed) {
  for (const char* a : allowed) {
    if (v == a) return true;
  }
  return false;
}

}  // namespace

bool CourseSpec::operator==(const CourseSpec& other) const {
  return ToConfig() == other.ToConfig();
}

Config CourseSpec::ToConfig() const {
  Config c;
  c.Set("seed", static_cast<int64_t>(seed));
  c.Set("dataset", dataset);
  c.Set("model", model);
  c.Set("num_clients", num_clients);
  c.Set("pool_size", pool_size);
  c.Set("hidden", hidden);
  c.Set("strategy", strategy);
  c.Set("broadcast", broadcast);
  c.Set("sampler", sampler);
  c.Set("num_groups", num_groups);
  c.Set("concurrency", concurrency);
  c.Set("overselect_frac", overselect_frac);
  c.Set("aggregation_goal", aggregation_goal);
  c.Set("staleness_tolerance", staleness_tolerance);
  c.Set("staleness_rho", staleness_rho);
  c.Set("time_budget", time_budget);
  c.Set("min_received", min_received);
  c.Set("receive_deadline", receive_deadline);
  c.Set("max_round_extensions", max_round_extensions);
  c.Set("max_rounds", max_rounds);
  c.Set("eval_interval", eval_interval);
  c.Set("collect_client_metrics", collect_client_metrics);
  c.Set("lr", lr);
  c.Set("local_steps", local_steps);
  c.Set("batch_size", batch_size);
  c.Set("jitter_sigma", jitter_sigma);
  c.Set("aggregator", aggregator);
  c.Set("trim_frac", trim_frac);
  c.Set("personalization", personalization);
  c.Set("compression", compression);
  c.Set("compression_keep_frac", compression_keep_frac);
  c.Set("dp_enable", dp_enable);
  c.Set("dp_noise", dp_noise);
  c.Set("dp_clip", dp_clip);
  c.Set("heterogeneous_fleet", heterogeneous_fleet);
  c.Set("through_wire", through_wire);
  c.Set("suppress_duplicates", suppress_duplicates);
  c.Set("crash_frac", crash_frac);
  c.Set("population", population);
  c.Set("topology.shards", topology_shards);
  c.Set("topology.standbys", topology_standbys);
  c.Set("topology.assignment", topology_assignment);
  c.Set("topology.failure_timeout", topology_failure_timeout);
  c.Set("topology.kill_shard", topology_kill_shard);
  c.Set("topology.kill_round", topology_kill_round);
  c.Set("fault.dropout_frac", fault_dropout_frac);
  c.Set("fault.crash_prob", fault_crash_prob);
  c.Set("fault.straggler_frac", fault_straggler_frac);
  c.Set("fault.straggler_delay", fault_straggler_delay);
  c.Set("fault.msg_loss_prob", fault_msg_loss_prob);
  c.Set("fault.msg_duplicate_prob", fault_msg_duplicate_prob);
  c.Set("fault.msg_delay_prob", fault_msg_delay_prob);
  c.Set("fault.msg_delay_max", fault_msg_delay_max);
  c.Set("guard.enabled", guard);
  c.Set("guard.l2", guard_l2);
  c.Set("guard.clip", guard_clip);
  c.Set("guard.quarantine_after", guard_k);
  c.Set("fault.hostile_frac", hostile_frac);
  c.Set("fault.hostile_mode", hostile_mode);
  c.Set("fault.hostile_prob", hostile_prob);
  c.Set("fault.hostile_scale", hostile_scale);
  return c;
}

Result<CourseSpec> CourseSpec::FromConfig(const Config& config) {
  CourseSpec s;
  const Config defaults = s.ToConfig();
  // Unknown keys are configuration typos, not silently-ignored extras.
  for (const std::string& key : config.Keys()) {
    if (!defaults.Has(key)) {
      return Status::InvalidArgument("unknown course-spec key: " + key);
    }
  }
  s.seed = static_cast<uint64_t>(config.GetInt("seed", 1));
  s.dataset = config.GetString("dataset", s.dataset);
  s.model = config.GetString("model", s.model);
  s.num_clients = static_cast<int>(config.GetInt("num_clients", s.num_clients));
  s.pool_size = static_cast<int>(config.GetInt("pool_size", s.pool_size));
  s.hidden = static_cast<int>(config.GetInt("hidden", s.hidden));
  s.strategy = config.GetString("strategy", s.strategy);
  s.broadcast = config.GetString("broadcast", s.broadcast);
  s.sampler = config.GetString("sampler", s.sampler);
  s.num_groups = static_cast<int>(config.GetInt("num_groups", s.num_groups));
  s.concurrency = static_cast<int>(config.GetInt("concurrency", s.concurrency));
  s.overselect_frac = config.GetDouble("overselect_frac", s.overselect_frac);
  s.aggregation_goal =
      static_cast<int>(config.GetInt("aggregation_goal", s.aggregation_goal));
  s.staleness_tolerance = static_cast<int>(
      config.GetInt("staleness_tolerance", s.staleness_tolerance));
  s.staleness_rho = config.GetDouble("staleness_rho", s.staleness_rho);
  s.time_budget = config.GetDouble("time_budget", s.time_budget);
  s.min_received =
      static_cast<int>(config.GetInt("min_received", s.min_received));
  s.receive_deadline = config.GetDouble("receive_deadline", s.receive_deadline);
  s.max_round_extensions = static_cast<int>(
      config.GetInt("max_round_extensions", s.max_round_extensions));
  s.max_rounds = static_cast<int>(config.GetInt("max_rounds", s.max_rounds));
  s.eval_interval =
      static_cast<int>(config.GetInt("eval_interval", s.eval_interval));
  s.collect_client_metrics =
      config.GetBool("collect_client_metrics", s.collect_client_metrics);
  s.lr = config.GetDouble("lr", s.lr);
  s.local_steps = static_cast<int>(config.GetInt("local_steps", s.local_steps));
  s.batch_size = static_cast<int>(config.GetInt("batch_size", s.batch_size));
  s.jitter_sigma = config.GetDouble("jitter_sigma", s.jitter_sigma);
  s.aggregator = config.GetString("aggregator", s.aggregator);
  s.trim_frac = config.GetDouble("trim_frac", s.trim_frac);
  s.personalization = config.GetString("personalization", s.personalization);
  s.compression = config.GetString("compression", s.compression);
  s.compression_keep_frac =
      config.GetDouble("compression_keep_frac", s.compression_keep_frac);
  s.dp_enable = config.GetBool("dp_enable", s.dp_enable);
  s.dp_noise = config.GetDouble("dp_noise", s.dp_noise);
  s.dp_clip = config.GetDouble("dp_clip", s.dp_clip);
  s.heterogeneous_fleet =
      config.GetBool("heterogeneous_fleet", s.heterogeneous_fleet);
  s.through_wire = config.GetBool("through_wire", s.through_wire);
  s.suppress_duplicates =
      config.GetBool("suppress_duplicates", s.suppress_duplicates);
  s.crash_frac = config.GetDouble("crash_frac", s.crash_frac);
  s.population = static_cast<int>(config.GetInt("population", s.population));
  s.topology_shards =
      static_cast<int>(config.GetInt("topology.shards", s.topology_shards));
  s.topology_standbys =
      static_cast<int>(config.GetInt("topology.standbys", s.topology_standbys));
  s.topology_assignment =
      config.GetString("topology.assignment", s.topology_assignment);
  s.topology_failure_timeout =
      config.GetDouble("topology.failure_timeout", s.topology_failure_timeout);
  s.topology_kill_shard = static_cast<int>(
      config.GetInt("topology.kill_shard", s.topology_kill_shard));
  s.topology_kill_round = static_cast<int>(
      config.GetInt("topology.kill_round", s.topology_kill_round));
  s.fault_dropout_frac =
      config.GetDouble("fault.dropout_frac", s.fault_dropout_frac);
  s.fault_crash_prob = config.GetDouble("fault.crash_prob", s.fault_crash_prob);
  s.fault_straggler_frac =
      config.GetDouble("fault.straggler_frac", s.fault_straggler_frac);
  s.fault_straggler_delay =
      config.GetDouble("fault.straggler_delay", s.fault_straggler_delay);
  s.fault_msg_loss_prob =
      config.GetDouble("fault.msg_loss_prob", s.fault_msg_loss_prob);
  s.fault_msg_duplicate_prob =
      config.GetDouble("fault.msg_duplicate_prob", s.fault_msg_duplicate_prob);
  s.fault_msg_delay_prob =
      config.GetDouble("fault.msg_delay_prob", s.fault_msg_delay_prob);
  s.fault_msg_delay_max =
      config.GetDouble("fault.msg_delay_max", s.fault_msg_delay_max);
  s.guard = config.GetBool("guard.enabled", s.guard);
  s.guard_l2 = config.GetDouble("guard.l2", s.guard_l2);
  s.guard_clip = config.GetBool("guard.clip", s.guard_clip);
  s.guard_k =
      static_cast<int>(config.GetInt("guard.quarantine_after", s.guard_k));
  s.hostile_frac = config.GetDouble("fault.hostile_frac", s.hostile_frac);
  s.hostile_mode = config.GetString("fault.hostile_mode", s.hostile_mode);
  s.hostile_prob = config.GetDouble("fault.hostile_prob", s.hostile_prob);
  s.hostile_scale = config.GetDouble("fault.hostile_scale", s.hostile_scale);
  FS_RETURN_IF_ERROR(CourseGen::Validate(s));
  return s;
}

std::string CourseSpec::ToString() const {
  const Config c = ToConfig();
  std::ostringstream out;
  bool first = true;
  for (const std::string& key : c.Keys()) {
    if (!first) out << ",";
    first = false;
    // Config::ToString emits "key = value" lines; rebuild compactly.
    if (auto b = c.Bool(key); b.ok()) {
      out << key << "=" << (*b ? "true" : "false");
    } else if (auto i = c.Int(key); i.ok()) {
      out << key << "=" << *i;
    } else if (auto d = c.Double(key); d.ok()) {
      std::ostringstream v;
      v.precision(17);
      v << *d;
      out << key << "=" << v.str();
    } else {
      out << key << "=" << c.GetString(key, "");
    }
  }
  return out.str();
}

Result<CourseSpec> CourseSpec::FromString(const std::string& line) {
  Config c;
  std::string token;
  std::istringstream in(line);
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    FS_RETURN_IF_ERROR(c.ParseAssignment(token));
  }
  return FromConfig(c);
}

CourseSpec CourseGen::Sample(uint64_t seed) {
  Rng rng(seed);
  CourseSpec s;
  s.seed = seed;

  s.dataset = PickOne<std::string>(&rng, {"cifar", "twitter"});
  s.personalization =
      PickOne<std::string>(&rng, {"none", "none", "fedbn", "ditto", "pfedme"});
  s.model = s.personalization == "fedbn"
                ? "mlp_bn"
                : PickOne<std::string>(&rng, {"mlp", "logreg"});
  s.num_clients = rng.UniformInt(4, 8);
  s.pool_size = rng.UniformInt(14, 22) * s.num_clients;
  s.hidden = rng.UniformInt(4, 12);

  s.strategy = PickOne<std::string>(
      &rng, {"sync_vanilla", "sync_overselect", "async_goal", "async_time"});
  s.broadcast =
      PickOne<std::string>(&rng, {"after_aggregating", "after_receiving"});
  s.sampler =
      PickOne<std::string>(&rng, {"uniform", "responsiveness", "group"});
  s.num_groups = rng.UniformInt(2, 3);
  s.concurrency = rng.UniformInt(2, s.num_clients);
  s.overselect_frac = rng.Uniform(0.1, 0.6);
  s.aggregation_goal = rng.UniformInt(1, s.concurrency);
  s.staleness_tolerance = rng.UniformInt(2, 8);
  s.staleness_rho = PickOne<double>(&rng, {0.0, 0.5});
  s.time_budget = rng.Uniform(0.2, 1.5);
  s.min_received = rng.UniformInt(1, s.concurrency);
  s.receive_deadline = rng.Bernoulli(0.5) ? rng.Uniform(0.3, 1.5) : 0.0;
  s.max_round_extensions = rng.UniformInt(3, 12);
  s.max_rounds = rng.UniformInt(2, 4);
  s.eval_interval = rng.UniformInt(1, 2);
  s.collect_client_metrics = rng.Bernoulli(0.25);

  s.lr = rng.Uniform(0.05, 0.4);
  s.local_steps = rng.UniformInt(1, 3);
  s.batch_size = rng.UniformInt(4, 8);
  s.jitter_sigma = PickOne<double>(&rng, {0.0, 0.1, 0.3});

  s.aggregator = PickOne<std::string>(
      &rng, {"fedavg", "fedopt", "fednova", "median", "trimmed_mean"});
  s.trim_frac = rng.Uniform(0.1, 0.4);
  s.compression = PickOne<std::string>(&rng, {"none", "quant8", "topk"});
  s.compression_keep_frac = rng.Uniform(0.1, 0.6);
  s.dp_enable = rng.Bernoulli(0.25);
  s.dp_noise = PickOne<double>(&rng, {0.0, 0.01, 0.05});
  s.dp_clip = rng.Uniform(0.5, 2.0);
  s.heterogeneous_fleet = rng.Bernoulli(0.5);
  s.through_wire = rng.Bernoulli(0.35);

  if (rng.Bernoulli(0.5)) {
    // Faulted course. Lossy knobs stay modest so most courses make
    // progress; Clamp forces a deadline wherever loss could stall a
    // synchronous round.
    s.fault_dropout_frac = rng.Bernoulli(0.4) ? rng.Uniform(0.1, 0.4) : 0.0;
    s.fault_crash_prob = rng.Bernoulli(0.3) ? rng.Uniform(0.05, 0.3) : 0.0;
    s.fault_straggler_frac = rng.Bernoulli(0.4) ? rng.Uniform(0.1, 0.5) : 0.0;
    s.fault_straggler_delay = rng.Uniform(0.1, 1.0);
    s.fault_msg_loss_prob = rng.Bernoulli(0.3) ? rng.Uniform(0.02, 0.2) : 0.0;
    s.fault_msg_duplicate_prob =
        rng.Bernoulli(0.4) ? rng.Uniform(0.05, 0.4) : 0.0;
    s.fault_msg_delay_prob = rng.Bernoulli(0.4) ? rng.Uniform(0.1, 0.5) : 0.0;
    s.fault_msg_delay_max = rng.Uniform(0.05, 0.5);
  }
  s.suppress_duplicates =
      s.fault_msg_duplicate_prob > 0.0 && rng.Bernoulli(0.5);

  // Sampled last so older corpus seeds keep drawing the same spec for
  // every pre-existing field.
  s.crash_frac = rng.Uniform(0.0, 1.0);

  // Topology axis (flat / 2-shard / 4-shard / standby failover), appended
  // after crash_frac for the same corpus-stability reason. Kept a minority
  // draw: Clamp projects hierarchical specs onto the synchronous
  // weighted-mean sub-lattice, so a frequent draw would collapse most of
  // the strategy/aggregator/fault diversity sampled above.
  const int topo = rng.Bernoulli(0.3) ? rng.UniformInt(1, 3) : 0;
  if (topo != 0) {
    s.topology_shards = topo == 2 ? 4 : 2;
    s.topology_assignment =
        PickOne<std::string>(&rng, {"round_robin", "contiguous"});
    s.topology_failure_timeout = rng.Uniform(10.0, 50.0);
    s.topology_standbys = rng.UniformInt(0, 2);
    if (topo == 3) {
      s.topology_standbys = std::max(1, s.topology_standbys);
      s.topology_kill_shard = rng.UniformInt(0, s.topology_shards - 1);
      s.topology_kill_round = rng.UniformInt(0, s.max_rounds - 1);
    }
  }

  // Population axis (client virtualization, DESIGN.md §13), appended after
  // the topology draws for corpus stability. A minority draw: it multiplies
  // course size by ~3x, so most specs stay small and fast.
  if (rng.Bernoulli(0.25)) s.population = rng.UniformInt(12, 28);

  // Hostility axis (ingress guard + Byzantine clients, DESIGN.md §14),
  // appended last for the same corpus-stability reason. A minority draw:
  // Clamp projects hostile specs onto the guarded robust-aggregator
  // sub-lattice, so a frequent draw would erode benign diversity. A second
  // small draw turns the guard on for benign courses, so the
  // guard-transparency oracle also sees guards that never fire.
  if (rng.Bernoulli(0.2)) {
    s.hostile_frac = rng.Uniform(0.1, 0.35);
    s.hostile_mode = PickOne<std::string>(
        &rng, {"nan", "inf", "sign_flip", "scale", "malformed", "replay",
               "mixed"});
    s.hostile_prob = rng.Uniform(0.5, 1.0);
    s.hostile_scale = PickOne<double>(&rng, {1e3, 1e6});
    s.guard_k = rng.UniformInt(1, 3);
    s.guard_l2 = rng.Bernoulli(0.3) ? 50.0 : 0.0;
    s.guard_clip = s.guard_l2 > 0.0 && rng.Bernoulli(0.5);
  } else if (rng.Bernoulli(0.15)) {
    s.guard = true;
  }

  return Clamp(s);
}

CourseSpec CourseGen::Clamp(CourseSpec s) {
  auto clamp_int = [](int v, int lo, int hi) {
    return std::max(lo, std::min(hi, v));
  };
  auto clamp_double = [](double v, double lo, double hi) {
    return std::max(lo, std::min(hi, v));
  };

  if (!OneOf(s.dataset, {"cifar", "twitter"})) s.dataset = "cifar";
  if (!OneOf(s.model, {"mlp", "logreg", "mlp_bn"})) s.model = "mlp";
  if (!OneOf(s.strategy,
             {"sync_vanilla", "sync_overselect", "async_goal", "async_time"})) {
    s.strategy = "sync_vanilla";
  }
  if (!OneOf(s.broadcast, {"after_aggregating", "after_receiving"})) {
    s.broadcast = "after_aggregating";
  }
  if (!OneOf(s.sampler, {"uniform", "responsiveness", "group"})) {
    s.sampler = "uniform";
  }
  if (!OneOf(s.aggregator, {"fedavg", "fedopt", "fednova", "median",
                            "trimmed_mean", "krum"})) {
    s.aggregator = "fedavg";
  }
  if (!OneOf(s.personalization, {"none", "fedbn", "ditto", "pfedme"})) {
    s.personalization = "none";
  }
  if (!OneOf(s.compression, {"none", "quant8", "topk"})) s.compression = "none";

  // FedBN needs BatchNorm parameters to withhold.
  if (s.personalization == "fedbn") s.model = "mlp_bn";

  s.num_clients = clamp_int(s.num_clients, 4, 10);
  s.pool_size = clamp_int(s.pool_size, 12 * s.num_clients, 400);
  s.hidden = clamp_int(s.hidden, 4, 24);
  s.num_groups = clamp_int(s.num_groups, 2, 4);
  s.concurrency = clamp_int(s.concurrency, 2, s.num_clients);
  s.overselect_frac = clamp_double(s.overselect_frac, 0.0, 1.0);
  s.aggregation_goal = clamp_int(s.aggregation_goal, 1, s.concurrency);
  s.staleness_tolerance = clamp_int(s.staleness_tolerance, 2, 20);
  s.staleness_rho = clamp_double(s.staleness_rho, 0.0, 2.0);
  s.time_budget = clamp_double(s.time_budget, 0.05, 5.0);
  s.min_received = clamp_int(s.min_received, 1, s.concurrency);
  s.receive_deadline =
      s.receive_deadline <= 0.0 ? 0.0
                                : clamp_double(s.receive_deadline, 0.1, 5.0);
  s.max_round_extensions = clamp_int(s.max_round_extensions, 1, 30);
  s.max_rounds = clamp_int(s.max_rounds, 1, 6);
  s.eval_interval = clamp_int(s.eval_interval, 1, s.max_rounds);
  s.lr = clamp_double(s.lr, 0.01, 1.0);
  s.local_steps = clamp_int(s.local_steps, 1, 4);
  s.batch_size = clamp_int(s.batch_size, 2, 16);
  s.jitter_sigma = clamp_double(s.jitter_sigma, 0.0, 0.5);
  s.trim_frac = clamp_double(s.trim_frac, 0.0, 0.45);
  s.compression_keep_frac = clamp_double(s.compression_keep_frac, 0.05, 1.0);
  s.dp_noise = clamp_double(s.dp_noise, 0.0, 0.2);
  s.dp_clip = clamp_double(s.dp_clip, 0.1, 5.0);

  s.crash_frac = clamp_double(s.crash_frac, 0.0, 1.0);
  s.fault_dropout_frac = clamp_double(s.fault_dropout_frac, 0.0, 1.0);
  s.fault_crash_prob = clamp_double(s.fault_crash_prob, 0.0, 0.5);
  s.fault_straggler_frac = clamp_double(s.fault_straggler_frac, 0.0, 1.0);
  s.fault_straggler_delay = clamp_double(s.fault_straggler_delay, 0.0, 2.0);
  s.fault_msg_loss_prob = clamp_double(s.fault_msg_loss_prob, 0.0, 0.3);
  s.fault_msg_duplicate_prob =
      clamp_double(s.fault_msg_duplicate_prob, 0.0, 0.5);
  s.fault_msg_delay_prob = clamp_double(s.fault_msg_delay_prob, 0.0, 0.8);
  s.fault_msg_delay_max = clamp_double(s.fault_msg_delay_max, 0.0, 2.0);
  if (s.fault_msg_delay_prob > 0.0 && s.fault_msg_delay_max <= 0.0) {
    s.fault_msg_delay_max = 0.1;
  }
  if (s.fault_straggler_frac > 0.0 && s.fault_straggler_delay <= 0.0) {
    s.fault_straggler_delay = 0.1;
  }

  // -- liveness rules -------------------------------------------------------
  const Strategy strategy = ParseStrategy(s.strategy);
  if (strategy == Strategy::kAsyncGoal) {
    // Goal-triggered aggregation has no timer backstop: lossy faults could
    // starve the goal forever, so they are out of this strategy's lattice.
    s.fault_dropout_frac = 0.0;
    s.fault_crash_prob = 0.0;
    s.fault_msg_loss_prob = 0.0;
    s.receive_deadline = 0.0;
  }
  if (strategy == Strategy::kAsyncTime) s.receive_deadline = 0.0;
  if (strategy == Strategy::kAsyncTime &&
      s.broadcast == "after_receiving" && s.fault_msg_duplicate_prob > 0.0) {
    // Every delivered update triggers a broadcast and every broadcast
    // triggers an update; duplication makes that feedback loop multiply
    // messages geometrically within the round's time budget (found by
    // fuzzing: seed 20). Delivery-side dedup is the system's mitigation,
    // so the lattice requires it for this corner instead of excluding it.
    s.suppress_duplicates = true;
  }
  const bool is_sync = strategy == Strategy::kSyncVanilla ||
                       strategy == Strategy::kSyncOverselect;
  if (is_sync && s.HasLossyFaults() && s.receive_deadline <= 0.0) {
    // A synchronous round that loses an update would block forever without
    // the deadline backstop.
    s.receive_deadline = 0.75;
  }

  // -- topology rules (DESIGN.md §11) ---------------------------------------
  if (!OneOf(s.topology_assignment, {"round_robin", "contiguous"})) {
    s.topology_assignment = "round_robin";
  }
  if (s.topology_shards <= 0) {
    // Flat: the whole axis collapses to defaults, so flat specs (and every
    // pre-topology corpus line) keep a single canonical form.
    s.topology_shards = 0;
    s.topology_standbys = 0;
    s.topology_assignment = "round_robin";
    s.topology_failure_timeout = 30.0;
    s.topology_kill_shard = -1;
    s.topology_kill_round = 0;
  } else {
    s.topology_shards = clamp_int(s.topology_shards, 2, 4);
    s.topology_standbys = clamp_int(s.topology_standbys, 0, 2);
    s.topology_failure_timeout =
        clamp_double(s.topology_failure_timeout, 10.0, 50.0);
    if (s.topology_kill_shard >= 0) {
      s.topology_kill_shard =
          clamp_int(s.topology_kill_shard, 0, s.topology_shards - 1);
      s.topology_kill_round =
          clamp_int(s.topology_kill_round, 0, s.max_rounds - 1);
      // A killed primary needs a standby to take over, or the shard (and
      // with it the synchronous round) is gone for good.
      s.topology_standbys = std::max(1, s.topology_standbys);
    } else {
      s.topology_kill_shard = -1;
      s.topology_kill_round = 0;
    }
    // Hierarchical pre-aggregation is defined for the weighted-mean root
    // under the synchronous full-coverage trigger; other strategies and
    // aggregators are outside the topology lattice.
    s.strategy = "sync_vanilla";
    s.broadcast = "after_aggregating";
    s.receive_deadline = 0.0;
    s.aggregator = "fedavg";
    // Standalone lossy faults suppress uplinks silently (no client_failure
    // control message exists in standalone mode), which would stall a
    // shard's sub-cohort forever — there is no deadline backstop in the
    // hierarchical trigger. Duplicated partials would double-count client
    // weight. Delay-only faults stay in the lattice.
    s.fault_dropout_frac = 0.0;
    s.fault_crash_prob = 0.0;
    s.fault_msg_loss_prob = 0.0;
    s.fault_msg_duplicate_prob = 0.0;
    s.suppress_duplicates = false;
    // Per-client metric collection reads model_update payloads the root
    // never sees under sharding.
    s.collect_client_metrics = false;
  }

  // -- population rules -----------------------------------------------------
  if (s.population <= 0) {
    s.population = 0;  // canonical "use num_clients" form
  } else {
    s.population = clamp_int(s.population, 12, 32);
    // Keep per-client partitions non-degenerate at the larger count (the
    // result stays within the [12*num_clients, 400] window above, so this
    // second clamp is idempotent).
    s.pool_size = clamp_int(s.pool_size, 8 * s.population, 400);
  }

  // -- hostility + guard rules (DESIGN.md §14) ------------------------------
  if (!OneOf(s.hostile_mode, {"nan", "inf", "sign_flip", "scale", "malformed",
                              "replay", "mixed"})) {
    s.hostile_mode = "nan";
  }
  s.hostile_frac = clamp_double(s.hostile_frac, 0.0, 0.35);
  if (!s.Hostile()) {
    // Benign: the hostile knobs collapse to canonical defaults so every
    // pre-guard corpus line keeps its historical repro form.
    s.hostile_mode = "nan";
    s.hostile_prob = 1.0;
    s.hostile_scale = 1e6;
  } else {
    s.hostile_prob = clamp_double(s.hostile_prob, 0.1, 1.0);
    s.hostile_scale = clamp_double(s.hostile_scale, 2.0, 1e8);
    // Every hostile course runs guarded: malformed payloads must be
    // screened at ingress or aggregation itself becomes the failure point.
    s.guard = true;
    // Poisoned quantized/sparse payloads would fail transport decoding
    // instead of ingress validation; hostile courses pin the raw encoding
    // so the guard, not the codec, is what the attack meets.
    s.compression = "none";
    // Leave idle benign capacity to replace quarantined attackers.
    s.concurrency = clamp_int(s.concurrency, 2,
                              std::max(2, (s.EffectiveClients() * 3) / 5));
    s.aggregation_goal = std::min(s.aggregation_goal, s.concurrency);
    s.min_received = std::min(s.min_received, s.concurrency);
    if (!s.Hierarchical()) {
      // The root aggregates raw cohorts: it needs a Byzantine-robust
      // aggregator. (Hierarchical roots see edge-guarded partials and stay
      // on the weighted mean the topology lattice requires.)
      if (s.aggregator == "fedavg") {
        s.aggregator = "median";
      } else if (s.aggregator == "fedopt") {
        s.aggregator = "trimmed_mean";
      } else if (s.aggregator == "fednova") {
        s.aggregator = "krum";
      }
      if (s.aggregator == "trimmed_mean") {
        // The trim must out-vote the hostile share, or the attack sits
        // inside the aggregator's breakdown point by construction.
        s.trim_frac = clamp_double(s.trim_frac, s.hostile_frac + 0.05, 0.45);
      }
      if (s.strategy == "async_goal") {
        // Rejected updates never fill the goal; the rebroadcast-per-reply
        // cycle keeps feedback flowing until quarantine exiles attackers.
        s.broadcast = "after_receiving";
      }
      const bool hostile_sync = s.strategy == "sync_vanilla" ||
                                s.strategy == "sync_overselect";
      if (hostile_sync && s.receive_deadline <= 0.0) {
        // Same backstop as lossy faults: a rejection can shrink a
        // synchronous cohort mid-round.
        s.receive_deadline = 0.75;
      }
    }
  }
  if (!s.guard) {
    // Guard-off canonical form (pre-guard corpus lines keep their shape).
    s.guard_l2 = 0.0;
    s.guard_clip = false;
    s.guard_k = 3;
  } else {
    s.guard_k = clamp_int(s.guard_k, 1, 5);
    s.guard_l2 =
        s.guard_l2 <= 0.0 ? 0.0 : clamp_double(s.guard_l2, 10.0, 1e4);
    if (s.guard_l2 <= 0.0) s.guard_clip = false;
  }
  return s;
}

Status CourseGen::Validate(const CourseSpec& spec) {
  const CourseSpec clamped = Clamp(spec);
  if (clamped != spec) {
    return Status::InvalidArgument(
        "course spec outside the valid lattice; clamped form:\n  " +
        clamped.ToString());
  }
  return Status::Ok();
}

std::unique_ptr<Aggregator> MakeSpecAggregator(const CourseSpec& spec) {
  if (spec.aggregator == "fedopt") {
    return std::make_unique<FedOptAggregator>(
        /*server_lr=*/1.0, /*server_momentum=*/0.3, spec.staleness_rho);
  }
  if (spec.aggregator == "fednova") {
    return std::make_unique<FedNovaAggregator>();
  }
  if (spec.aggregator == "median") {
    return std::make_unique<MedianAggregator>();
  }
  if (spec.aggregator == "trimmed_mean") {
    return std::make_unique<TrimmedMeanAggregator>(spec.trim_frac);
  }
  if (spec.aggregator == "krum") {
    // Budget f from the spec's own hostile share of one cohort; Krum wants
    // at least n - f - 2 honest-majority neighbours, so multi_k shrinks
    // with the cohort rather than going negative.
    const int f = std::max(
        1, static_cast<int>(std::lround(spec.hostile_frac * spec.concurrency)));
    const int multi_k = std::max(1, spec.concurrency - f - 2);
    return std::make_unique<KrumAggregator>(f, multi_k);
  }
  return std::make_unique<FedAvgAggregator>(
      FedAvgOptions{1.0, spec.staleness_rho});
}

std::unique_ptr<CourseFixture> MakeCourseFixture(const CourseSpec& spec) {
  auto fixture = std::make_unique<CourseFixture>();
  fixture->spec = CourseGen::Clamp(spec);
  const CourseSpec& s = fixture->spec;
  const int n = s.EffectiveClients();
  if (s.dataset == "twitter") {
    SyntheticTwitterOptions opts;
    opts.num_clients = n;
    opts.vocab = 24;
    opts.words_per_text = 10;
    opts.min_texts = std::max(4, s.pool_size / (2 * n));
    opts.max_texts = std::max<int64_t>(opts.min_texts + 2, s.pool_size / n);
    opts.server_test_size = 64;
    opts.seed = s.seed * 2 + 5;
    fixture->data = MakeSyntheticTwitter(opts);
  } else {
    SyntheticCifarOptions opts;
    opts.num_clients = n;
    opts.classes = 4;
    opts.channels = 1;
    opts.image_size = 6;
    opts.pool_size = s.pool_size;
    opts.alpha = 0.5;
    opts.server_test_size = 64;
    opts.seed = s.seed * 2 + 5;
    fixture->data = MakeSyntheticCifar(opts);
  }
  return fixture;
}

FedJob CourseFixture::MakeJob() const {
  const CourseSpec& s = spec;
  FedJob job;
  job.data = &data;
  job.seed = s.seed;

  const int64_t features = data.server_test.x.numel() /
                           std::max<int64_t>(1, data.server_test.x.dim(0));
  const int64_t classes = s.dataset == "twitter" ? 2 : 4;
  Rng model_rng(s.seed ^ 0x5eedull);
  Model body;
  if (s.model == "logreg") {
    body = MakeLogisticRegression(features, classes, &model_rng);
  } else if (s.model == "mlp_bn") {
    body = MakeMlpBn({features, s.hidden, classes}, &model_rng);
  } else {
    body = MakeMlp({features, s.hidden, classes}, &model_rng);
  }
  // cifar examples are [N, C, H, W]; the dense models expect [N, features].
  Model model;
  model.Add("flat", std::make_unique<Flatten>());
  for (int i = 0; i < body.num_layers(); ++i) {
    model.Add(body.layer_name(i), body.layer(i)->Clone());
  }
  job.init_model = std::move(model);

  job.server.strategy = ParseStrategy(s.strategy);
  job.server.broadcast = s.broadcast == "after_receiving"
                             ? BroadcastManner::kAfterReceiving
                             : BroadcastManner::kAfterAggregating;
  job.server.sampler = s.sampler;
  job.server.num_groups = s.num_groups;
  job.server.concurrency = s.concurrency;
  job.server.overselect_frac = s.overselect_frac;
  job.server.aggregation_goal = s.aggregation_goal;
  job.server.staleness_tolerance = s.staleness_tolerance;
  job.server.time_budget = s.time_budget;
  job.server.min_received = s.min_received;
  job.server.receive_deadline = s.receive_deadline;
  job.server.max_round_extensions = s.max_round_extensions;
  job.server.max_rounds = s.max_rounds;
  job.server.eval_interval = s.eval_interval;
  job.server.collect_client_metrics = s.collect_client_metrics;

  job.client.train.lr = s.lr;
  job.client.train.local_steps = s.local_steps;
  job.client.train.batch_size = s.batch_size;
  job.client.jitter_sigma = s.jitter_sigma;
  job.client.compression = s.compression;
  job.client.compression_keep_frac = s.compression_keep_frac;
  job.client.dp.enable = s.dp_enable;
  job.client.dp.noise_multiplier = s.dp_noise;
  job.client.dp.clip_norm = s.dp_clip;

  job.staleness_rho = s.staleness_rho;
  job.aggregator_factory = [spec = s]() { return MakeSpecAggregator(spec); };
  if (s.personalization == "ditto") {
    job.trainer_factory = [](int) {
      return std::make_unique<DittoTrainer>(DittoOptions{0.5, 0});
    };
  } else if (s.personalization == "pfedme") {
    job.trainer_factory = [](int) {
      return std::make_unique<PFedMeTrainer>(PFedMeOptions{1.0, 2, 0.0, 0.05});
    };
  }

  if (s.heterogeneous_fleet) {
    FleetOptions fleet_opts;
    fleet_opts.compute_median = 400.0;
    fleet_opts.compute_sigma = 0.6;
    fleet_opts.bandwidth_median = 4e6;
    fleet_opts.bandwidth_sigma = 0.6;
    fleet_opts.straggler_frac = 0.2;
    fleet_opts.straggler_slowdown = 0.25;
    Rng fleet_rng(s.seed ^ 0xf1ee7ull);
    job.fleet = MakeFleet(s.EffectiveClients(), fleet_opts, &fleet_rng);
  }

  job.server.topology.num_shards = s.topology_shards;
  job.server.topology.standbys_per_shard = s.topology_standbys;
  job.server.topology.assignment = s.topology_assignment;
  job.server.topology.failure_timeout = s.topology_failure_timeout;
  if (s.topology_kill_shard >= 0) {
    job.fault.aggregator_crashes.push_back(
        AggregatorCrash{s.topology_kill_shard, /*slot=*/0,
                        s.topology_kill_round});
  }

  job.through_wire = s.through_wire;
  job.suppress_duplicates = s.suppress_duplicates;
  job.fault.dropout_frac = s.fault_dropout_frac;
  job.fault.crash_after_training_prob = s.fault_crash_prob;
  job.fault.straggler_frac = s.fault_straggler_frac;
  job.fault.straggler_delay = s.fault_straggler_delay;
  job.fault.msg_loss_prob = s.fault_msg_loss_prob;
  job.fault.msg_duplicate_prob = s.fault_msg_duplicate_prob;
  job.fault.msg_delay_prob = s.fault_msg_delay_prob;
  job.fault.msg_delay_max = s.fault_msg_delay_max;
  job.fault.seed = s.seed ^ 0xfa017ull;

  job.server.guard.enabled = s.guard;
  job.server.guard.l2_bound = s.guard_l2;
  job.server.guard.clip_to_bound = s.guard_clip;
  job.server.guard.quarantine_after = s.guard_k;
  job.fault.hostile_frac = s.hostile_frac;
  job.fault.hostile_mode = s.hostile_mode;
  job.fault.hostile_prob = s.hostile_prob;
  job.fault.hostile_scale = s.hostile_scale;

  if (s.personalization == "fedbn") ApplyFedBn(&job);
  return job;
}

}  // namespace testing
}  // namespace fedscope
