#ifndef FEDSCOPE_TESTING_COURSE_GEN_H_
#define FEDSCOPE_TESTING_COURSE_GEN_H_

#include <memory>
#include <string>

#include "fedscope/core/fed_runner.h"
#include "fedscope/util/config.h"
#include "fedscope/util/status.h"

namespace fedscope {
namespace testing {

/// One point in the paper's plug-in configuration lattice, small enough to
/// run as a sub-second standalone course. Every field round-trips through
/// Config (key=value), so a failing draw prints as a one-line repro and
/// replays from the corpus. String fields use the same vocabulary as the
/// production options they map to (see MakeCourseFixture).
struct CourseSpec {
  uint64_t seed = 1;

  // -- data / model (tiny by construction) ----------------------------------
  std::string dataset = "cifar";  ///< "cifar" | "twitter"
  std::string model = "mlp";      ///< "mlp" | "logreg" | "mlp_bn"
  int num_clients = 6;
  int pool_size = 160;  ///< global example pool (cifar) / text budget (twitter)
  int hidden = 8;       ///< MLP hidden width

  // -- server strategy (§3.3) -----------------------------------------------
  std::string strategy = "sync_vanilla";
  ///< "sync_vanilla" | "sync_overselect" | "async_goal" | "async_time"
  std::string broadcast = "after_aggregating";  ///< | "after_receiving"
  std::string sampler = "uniform";  ///< "uniform" | "responsiveness" | "group"
  int num_groups = 3;
  int concurrency = 4;
  double overselect_frac = 0.3;
  int aggregation_goal = 2;
  int staleness_tolerance = 5;
  double staleness_rho = 0.0;
  double time_budget = 1.0;
  int min_received = 1;
  double receive_deadline = 0.0;
  int max_round_extensions = 10;
  int max_rounds = 3;
  int eval_interval = 1;
  bool collect_client_metrics = false;

  // -- local training -------------------------------------------------------
  double lr = 0.1;
  int local_steps = 1;
  int batch_size = 4;
  double jitter_sigma = 0.0;

  // -- plug-ins -------------------------------------------------------------
  std::string aggregator = "fedavg";
  ///< "fedavg"|"fedopt"|"fednova"|"median"|"trimmed_mean"|"krum"
  double trim_frac = 0.2;
  std::string personalization = "none";  ///< "none"|"fedbn"|"ditto"|"pfedme"
  std::string compression = "none";      ///< "none" | "quant8" | "topk"
  double compression_keep_frac = 0.3;
  bool dp_enable = false;
  double dp_noise = 0.0;
  double dp_clip = 1.0;
  bool heterogeneous_fleet = false;
  bool through_wire = false;
  bool suppress_duplicates = false;

  // -- crash-recovery drill (oracle 8) --------------------------------------
  /// Where in the course the server is killed and restored from a
  /// serialized snapshot, as a fraction of the uninterrupted run's
  /// delivered-event count (0 = before the first delivery, 1 = before the
  /// last). The resumed course must be bit-identical to the uninterrupted
  /// one. Always exercised: courses cannot opt out of crash consistency.
  double crash_frac = 0.5;

  // -- topology (hierarchical sharded aggregation, DESIGN.md §11) -----------
  /// Shard count of the aggregation tree; 0 = flat (the default). Flat
  /// specs collapse the whole topology axis to defaults under Clamp so
  /// pre-topology corpus lines keep their historical repro form.
  int topology_shards = 0;
  /// Hot standbys per shard (slots 1..N behind the slot-0 primary).
  int topology_standbys = 0;
  std::string topology_assignment = "round_robin";  ///< | "contiguous"
  /// Standby watchdog silence threshold (virtual seconds).
  double topology_failure_timeout = 30.0;
  /// Shard whose slot-0 primary is crash-scheduled mid-course; -1 = no
  /// kill. A kill forces topology_standbys >= 1 (someone must take over).
  int topology_kill_shard = -1;
  int topology_kill_round = 0;

  // -- population (client virtualization, DESIGN.md §13) --------------------
  /// Total participant count when it exceeds the dataset-diversity axis:
  /// 0 = num_clients (the historical default; every pre-population corpus
  /// line keeps its form). > 0 draws a population larger than any cohort
  /// (clamped to [12, 32]), so virtualized runs exercise eviction and
  /// re-instantiation. The eager-vs-virtualized differential (oracle 12)
  /// runs on every spec either way.
  int population = 0;

  // -- fault plan -----------------------------------------------------------
  double fault_dropout_frac = 0.0;
  double fault_crash_prob = 0.0;
  double fault_straggler_frac = 0.0;
  double fault_straggler_delay = 0.0;
  double fault_msg_loss_prob = 0.0;
  double fault_msg_duplicate_prob = 0.0;
  double fault_msg_delay_prob = 0.0;
  double fault_msg_delay_max = 0.0;

  // -- ingress guard + hostile clients (DESIGN.md §14) ----------------------
  /// Server-side ingress validation of every received update (shape
  /// signature, finiteness, optional L2 bound). Forced on whenever
  /// hostile_frac > 0; may also be on for benign courses (oracle 13 checks
  /// that a guard which never fires is bit-invisible).
  bool guard = false;
  /// L2-norm bound on accepted deltas; 0 disables the norm screen.
  double guard_l2 = 0.0;
  /// Clip over-norm deltas to the bound instead of rejecting them.
  bool guard_clip = false;
  /// Violations before a client is quarantined out of the sampling pool.
  int guard_k = 3;
  /// Fraction of the fleet mutated in flight by the fault plan (0 = none).
  double hostile_frac = 0.0;
  std::string hostile_mode = "nan";
  ///< "nan"|"inf"|"sign_flip"|"scale"|"malformed"|"replay"|"mixed"
  double hostile_prob = 1.0;
  double hostile_scale = 1e6;

  bool operator==(const CourseSpec& other) const;
  bool operator!=(const CourseSpec& other) const { return !(*this == other); }

  /// True when any lossy fault knob is set (messages can disappear).
  bool HasLossyFaults() const {
    return fault_dropout_frac > 0.0 || fault_crash_prob > 0.0 ||
           fault_msg_loss_prob > 0.0;
  }

  /// True when the spec runs a hierarchical (sharded) aggregation tree.
  bool Hierarchical() const { return topology_shards > 0; }

  /// True when part of the fleet attacks (hostile-client axis active).
  bool Hostile() const { return hostile_frac > 0.0; }

  /// The participant count the course actually runs with.
  int EffectiveClients() const {
    return population > 0 ? population : num_clients;
  }

  Config ToConfig() const;
  static Result<CourseSpec> FromConfig(const Config& config);
  /// Comma-joined "key=value" pairs — the one-line repro format.
  std::string ToString() const;
  static Result<CourseSpec> FromString(const std::string& line);
};

/// Seeded generator over the valid region of the lattice.
class CourseGen {
 public:
  /// Draws a random valid spec. Same seed -> identical spec.
  static CourseSpec Sample(uint64_t seed);

  /// Projects an arbitrary spec onto the valid region (ranges clamped,
  /// cross-field liveness rules enforced). Sample and the shrinker both
  /// route through this, so every spec the harness ever runs is valid.
  static CourseSpec Clamp(CourseSpec spec);

  /// Error iff the spec violates a range or liveness rule Clamp enforces.
  static Status Validate(const CourseSpec& spec);
};

/// A materialized course: the spec plus the (owning) dataset behind the
/// FedJob. Keep the fixture alive while any FedRunner built from MakeJob
/// is running.
struct CourseFixture {
  CourseSpec spec;
  FedDataset data;

  /// Builds the FedJob this spec describes (borrowing `data`).
  FedJob MakeJob() const;
};

std::unique_ptr<CourseFixture> MakeCourseFixture(const CourseSpec& spec);

/// The aggregator the spec's course would use (also used stand-alone by
/// the aggregate-weight-conservation oracle).
std::unique_ptr<Aggregator> MakeSpecAggregator(const CourseSpec& spec);

}  // namespace testing
}  // namespace fedscope

#endif  // FEDSCOPE_TESTING_COURSE_GEN_H_
