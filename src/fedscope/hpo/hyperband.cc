#include "fedscope/hpo/hyperband.h"

#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {

HpoResult RunHyperband(const SearchSpace& space, HpoObjective* objective,
                       const HyperbandOptions& options, Rng* rng) {
  FS_CHECK_GE(options.eta, 2);
  const int s_max = static_cast<int>(
      std::log(static_cast<double>(options.max_budget)) /
      std::log(static_cast<double>(options.eta)));

  HpoResult result;
  double spent = 0.0;
  for (int s = s_max; s >= 0; --s) {
    // Bracket s: n configs at initial budget max_budget / eta^s.
    const int n = static_cast<int>(
        std::ceil(static_cast<double>(s_max + 1) /
                  (s + 1) * std::pow(options.eta, s)));
    ShaOptions sha;
    sha.eta = options.eta;
    sha.num_rungs = s + 1;
    sha.min_budget = std::max(
        1, options.max_budget /
               static_cast<int>(std::pow(options.eta, s)));
    std::vector<Config> configs;
    configs.reserve(n);
    for (int i = 0; i < n; ++i) configs.push_back(space.Sample(rng));
    HpoResult bracket =
        RunShaOnConfigs(std::move(configs), objective, sha, &spent);
    for (const auto& event : bracket.trace) {
      RecordTrial(&result, event.cumulative_budget, event.config,
                  event.val_loss, event.test_accuracy);
    }
  }
  return result;
}

}  // namespace fedscope
