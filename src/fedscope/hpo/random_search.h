#ifndef FEDSCOPE_HPO_RANDOM_SEARCH_H_
#define FEDSCOPE_HPO_RANDOM_SEARCH_H_

#include "fedscope/hpo/search_space.h"

namespace fedscope {

/// Random search (Bergstra & Bengio): samples `num_trials` configurations
/// uniformly from the space, evaluating each at full budget. The baseline
/// wrapper of Figure 14.
HpoResult RunRandomSearch(const SearchSpace& space, HpoObjective* objective,
                          int num_trials, int budget_rounds, Rng* rng);

/// Grid search over a full-factorial grid with `per_dim` points.
HpoResult RunGridSearch(const SearchSpace& space, HpoObjective* objective,
                        int per_dim, int budget_rounds);

}  // namespace fedscope

#endif  // FEDSCOPE_HPO_RANDOM_SEARCH_H_
