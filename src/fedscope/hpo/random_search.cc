#include "fedscope/hpo/random_search.h"

namespace fedscope {

HpoResult RunRandomSearch(const SearchSpace& space, HpoObjective* objective,
                          int num_trials, int budget_rounds, Rng* rng) {
  HpoResult result;
  double spent = 0.0;
  for (int trial = 0; trial < num_trials; ++trial) {
    Config config = space.Sample(rng);
    auto outcome = objective->Evaluate(config, budget_rounds, nullptr);
    spent += budget_rounds;
    RecordTrial(&result, spent, config, outcome.val_loss,
                outcome.test_accuracy);
  }
  return result;
}

HpoResult RunGridSearch(const SearchSpace& space, HpoObjective* objective,
                        int per_dim, int budget_rounds) {
  HpoResult result;
  double spent = 0.0;
  for (const Config& config : space.Grid(per_dim)) {
    auto outcome = objective->Evaluate(config, budget_rounds, nullptr);
    spent += budget_rounds;
    RecordTrial(&result, spent, config, outcome.val_loss,
                outcome.test_accuracy);
  }
  return result;
}

}  // namespace fedscope
