#include "fedscope/hpo/search_space.h"

#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {

SearchSpace& SearchSpace::AddDouble(const std::string& name, double lo,
                                    double hi, bool log_scale) {
  FS_CHECK_LT(lo, hi);
  if (log_scale) FS_CHECK_GT(lo, 0.0);
  Dimension dim;
  dim.type = Dimension::Type::kDouble;
  dim.name = name;
  dim.lo = lo;
  dim.hi = hi;
  dim.log_scale = log_scale;
  dims_.push_back(std::move(dim));
  return *this;
}

SearchSpace& SearchSpace::AddInt(const std::string& name, int64_t lo,
                                 int64_t hi) {
  FS_CHECK_LE(lo, hi);
  Dimension dim;
  dim.type = Dimension::Type::kInt;
  dim.name = name;
  dim.lo = static_cast<double>(lo);
  dim.hi = static_cast<double>(hi);
  dims_.push_back(std::move(dim));
  return *this;
}

SearchSpace& SearchSpace::AddCategorical(const std::string& name,
                                         std::vector<double> choices) {
  FS_CHECK(!choices.empty());
  Dimension dim;
  dim.type = Dimension::Type::kCategorical;
  dim.name = name;
  dim.choices = std::move(choices);
  dims_.push_back(std::move(dim));
  return *this;
}

namespace {

void SetDim(Config* config, const SearchSpace::Dimension& dim, double value) {
  switch (dim.type) {
    case SearchSpace::Dimension::Type::kDouble:
      config->Set(dim.name, value);
      break;
    case SearchSpace::Dimension::Type::kInt:
      config->Set(dim.name, static_cast<int64_t>(std::llround(value)));
      break;
    case SearchSpace::Dimension::Type::kCategorical:
      config->Set(dim.name, value);
      break;
  }
}

}  // namespace

Config SearchSpace::Sample(Rng* rng) const {
  Config config;
  for (const auto& dim : dims_) {
    switch (dim.type) {
      case Dimension::Type::kDouble: {
        double v;
        if (dim.log_scale) {
          v = std::exp(rng->Uniform(std::log(dim.lo), std::log(dim.hi)));
        } else {
          v = rng->Uniform(dim.lo, dim.hi);
        }
        SetDim(&config, dim, v);
        break;
      }
      case Dimension::Type::kInt:
        SetDim(&config, dim,
               static_cast<double>(rng->UniformInt(
                   static_cast<int64_t>(dim.lo),
                   static_cast<int64_t>(dim.hi))));
        break;
      case Dimension::Type::kCategorical:
        SetDim(&config, dim,
               dim.choices[rng->UniformInt(0, dim.choices.size() - 1)]);
        break;
    }
  }
  return config;
}

std::vector<Config> SearchSpace::Grid(int per_dim) const {
  FS_CHECK_GE(per_dim, 1);
  std::vector<Config> grid{Config()};
  for (const auto& dim : dims_) {
    std::vector<double> values;
    switch (dim.type) {
      case Dimension::Type::kCategorical:
        values = dim.choices;
        break;
      case Dimension::Type::kInt: {
        const int64_t lo = static_cast<int64_t>(dim.lo);
        const int64_t hi = static_cast<int64_t>(dim.hi);
        const int64_t count =
            std::min<int64_t>(per_dim, hi - lo + 1);
        for (int64_t i = 0; i < count; ++i) {
          values.push_back(static_cast<double>(
              lo + i * std::max<int64_t>(1, (hi - lo) /
                                                std::max<int64_t>(
                                                    1, count - 1))));
        }
        break;
      }
      case Dimension::Type::kDouble:
        for (int i = 0; i < per_dim; ++i) {
          const double t =
              per_dim == 1 ? 0.5
                           : static_cast<double>(i) / (per_dim - 1);
          if (dim.log_scale) {
            values.push_back(std::exp(std::log(dim.lo) +
                                      t * (std::log(dim.hi) -
                                           std::log(dim.lo))));
          } else {
            values.push_back(dim.lo + t * (dim.hi - dim.lo));
          }
        }
        break;
    }
    std::vector<Config> expanded;
    expanded.reserve(grid.size() * values.size());
    for (const auto& base : grid) {
      for (double v : values) {
        Config next = base;
        SetDim(&next, dim, v);
        expanded.push_back(std::move(next));
      }
    }
    grid = std::move(expanded);
  }
  return grid;
}

std::vector<double> SearchSpace::ToUnit(const Config& config) const {
  std::vector<double> unit(dims_.size(), 0.5);
  for (size_t d = 0; d < dims_.size(); ++d) {
    const auto& dim = dims_[d];
    const double v = config.GetDouble(dim.name, dim.lo);
    switch (dim.type) {
      case Dimension::Type::kCategorical: {
        // Index position normalized.
        size_t idx = 0;
        for (size_t c = 0; c < dim.choices.size(); ++c) {
          if (dim.choices[c] == v) idx = c;
        }
        unit[d] = dim.choices.size() > 1
                      ? static_cast<double>(idx) / (dim.choices.size() - 1)
                      : 0.5;
        break;
      }
      default:
        if (dim.log_scale) {
          unit[d] = (std::log(v) - std::log(dim.lo)) /
                    (std::log(dim.hi) - std::log(dim.lo));
        } else {
          unit[d] = (v - dim.lo) / (dim.hi - dim.lo);
        }
    }
  }
  return unit;
}

Config SearchSpace::FromUnit(const std::vector<double>& unit) const {
  FS_CHECK_EQ(unit.size(), dims_.size());
  Config config;
  for (size_t d = 0; d < dims_.size(); ++d) {
    const auto& dim = dims_[d];
    const double t = std::clamp(unit[d], 0.0, 1.0);
    switch (dim.type) {
      case Dimension::Type::kCategorical: {
        const size_t idx = std::min<size_t>(
            static_cast<size_t>(t * dim.choices.size()),
            dim.choices.size() - 1);
        SetDim(&config, dim, dim.choices[idx]);
        break;
      }
      default: {
        double v;
        if (dim.log_scale) {
          v = std::exp(std::log(dim.lo) +
                       t * (std::log(dim.hi) - std::log(dim.lo)));
        } else {
          v = dim.lo + t * (dim.hi - dim.lo);
        }
        SetDim(&config, dim, v);
      }
    }
  }
  return config;
}

void RecordTrial(HpoResult* result, double budget_spent, const Config& config,
                 double val_loss, double test_accuracy) {
  if (val_loss < result->best_val_loss) {
    result->best_val_loss = val_loss;
    result->best_config = config;
    result->best_test_accuracy = test_accuracy;
  }
  HpoEvent event;
  event.cumulative_budget = budget_spent;
  event.val_loss = val_loss;
  event.best_seen_val_loss = result->best_val_loss;
  event.test_accuracy = test_accuracy;
  event.config = config;
  result->trace.push_back(std::move(event));
}

}  // namespace fedscope
