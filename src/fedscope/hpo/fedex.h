#ifndef FEDSCOPE_HPO_FEDEX_H_
#define FEDSCOPE_HPO_FEDEX_H_

#include <functional>
#include <map>
#include <vector>

#include "fedscope/core/server.h"
#include "fedscope/hpo/search_space.h"

namespace fedscope {

/// FedEx (Khodak et al., NeurIPS'21) — the Federated-HPO method of §4.3:
/// instead of treating a whole FL course as one black-box evaluation,
/// client-wise configurations are *explored concurrently within a single
/// FL round*. The policy keeps a distribution over a finite set of
/// candidate configurations ("arms"); each sampled client draws an arm,
/// re-specifies its native configuration (Figure 8), trains, and returns
/// validation feedback. The policy is updated by exponentiated gradient
/// with importance weighting.
///
/// Installed into a Server through the ConfigProvider / FeedbackConsumer
/// plug-in hooks.
class FedExPolicy {
 public:
  /// `arms` use hpo.* config keys (hpo.lr, hpo.local_steps, ...), which
  /// clients understand natively. `step_size` is the exponentiated-
  /// gradient learning rate.
  FedExPolicy(std::vector<Config> arms, double step_size, uint64_t seed);

  /// Hook for Server::set_config_provider.
  Server::ConfigProvider MakeConfigProvider();
  /// Hook for Server::set_feedback_consumer.
  Server::FeedbackConsumer MakeFeedbackConsumer();

  const std::vector<double>& probabilities() const { return probs_; }
  /// The currently most-probable arm.
  const Config& BestArm() const;
  int best_arm_index() const;
  int num_updates() const { return num_updates_; }

  /// Builds `num_arms` arms by sampling a client-side search space.
  static std::vector<Config> SampleArms(const SearchSpace& space,
                                        int num_arms, Rng* rng);

 private:
  void Update(int arm, double cost);
  void Normalize();

  std::vector<Config> arms_;
  std::vector<double> log_weights_;
  std::vector<double> probs_;
  double step_size_;
  Rng rng_;
  std::map<int, int> arm_of_client_;  // last arm handed to each client
  double baseline_ = 0.0;
  int num_updates_ = 0;
};

/// Result of one FedEx-instrumented FL course (provided by the caller,
/// who owns the FedRunner wiring).
struct FedExCourseResult {
  double val_loss = 0.0;
  double test_accuracy = 0.0;
};
using FedExCourseRunner = std::function<FedExCourseResult(
    const Config& wrapper_config, FedExPolicy* policy, int budget_rounds)>;

/// "FedEx wrapped by RS" (Figure 14): the wrapper (random search) proposes
/// server-side configurations; for each, a full FL course runs with FedEx
/// exploring the client-side space concurrently.
HpoResult RunFedExWrapped(const SearchSpace& wrapper_space,
                          const SearchSpace& client_space, int num_arms,
                          const FedExCourseRunner& runner, int wrapper_trials,
                          int budget_rounds, double step_size, Rng* rng);

}  // namespace fedscope

#endif  // FEDSCOPE_HPO_FEDEX_H_
