#ifndef FEDSCOPE_HPO_SUCCESSIVE_HALVING_H_
#define FEDSCOPE_HPO_SUCCESSIVE_HALVING_H_

#include "fedscope/hpo/search_space.h"

namespace fedscope {

struct ShaOptions {
  /// Initial number of configurations.
  int num_configs = 9;
  /// Keep top 1/eta per rung.
  int eta = 3;
  /// Budget (rounds) of the first rung; later rungs multiply by eta.
  int min_budget = 2;
  /// Number of rungs (num_configs should be ~ eta^(rungs-1)).
  int num_rungs = 3;
};

/// Successive halving (SHA, Li et al. Hyperband paper): evaluates many
/// configurations cheaply, repeatedly keeping the best 1/eta and
/// continuing them *from their checkpoints* with eta-times the budget —
/// exercising the checkpoint/restore mechanism of §4.3.
HpoResult RunSuccessiveHalving(const SearchSpace& space,
                               HpoObjective* objective,
                               const ShaOptions& options, Rng* rng);

/// SHA over a caller-provided initial population (used by Hyperband).
HpoResult RunShaOnConfigs(std::vector<Config> configs,
                          HpoObjective* objective, const ShaOptions& options,
                          double* budget_spent);

}  // namespace fedscope

#endif  // FEDSCOPE_HPO_SUCCESSIVE_HALVING_H_
