#include "fedscope/hpo/gp_bo.h"

#include <algorithm>
#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {

bool CholeskyFactor(std::vector<double>* a, int n) {
  std::vector<double>& m = *a;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = m[i * n + j];
      for (int k = 0; k < j; ++k) sum -= m[i * n + k] * m[j * n + k];
      if (i == j) {
        if (sum <= 0.0) return false;
        m[i * n + j] = std::sqrt(sum);
      } else {
        m[i * n + j] = sum / m[j * n + j];
      }
    }
    for (int j = i + 1; j < n; ++j) m[i * n + j] = 0.0;
  }
  return true;
}

std::vector<double> CholeskySolve(const std::vector<double>& l, int n,
                                  std::vector<double> b) {
  // Forward: L y = b.
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int k = 0; k < i; ++k) sum -= l[i * n + k] * b[k];
    b[i] = sum / l[i * n + i];
  }
  // Backward: L^T x = y.
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[i];
    for (int k = i + 1; k < n; ++k) sum -= l[k * n + i] * b[k];
    b[i] = sum / l[i * n + i];
  }
  return b;
}

namespace {

double RbfKernel(const std::vector<double>& a, const std::vector<double>& b,
                 double length_scale) {
  double sq = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double diff = a[d] - b[d];
    sq += diff * diff;
  }
  return std::exp(-0.5 * sq / (length_scale * length_scale));
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
double NormalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

/// GP posterior at x given observations (xs, ys) and the Cholesky factor
/// of the kernel matrix; alpha = K^{-1} y.
struct Posterior {
  double mean;
  double stddev;
};

Posterior GpPredict(const std::vector<std::vector<double>>& xs,
                    const std::vector<double>& alpha,
                    const std::vector<double>& l_factor, int n,
                    const std::vector<double>& x, double length_scale,
                    double y_mean) {
  std::vector<double> k_star(n);
  for (int i = 0; i < n; ++i) k_star[i] = RbfKernel(xs[i], x, length_scale);
  double mean = y_mean;
  for (int i = 0; i < n; ++i) mean += k_star[i] * alpha[i];
  // v = L^{-1} k_star (forward substitution only).
  std::vector<double> v = k_star;
  for (int i = 0; i < n; ++i) {
    double sum = v[i];
    for (int k = 0; k < i; ++k) sum -= l_factor[i * n + k] * v[k];
    v[i] = sum / l_factor[i * n + i];
  }
  double var = 1.0;  // k(x, x) for RBF
  for (int i = 0; i < n; ++i) var -= v[i] * v[i];
  return {mean, std::sqrt(std::max(var, 1e-12))};
}

}  // namespace

HpoResult RunGpBo(const SearchSpace& space, HpoObjective* objective,
                  const GpBoOptions& options, Rng* rng) {
  HpoResult result;
  double spent = 0.0;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;

  auto evaluate = [&](const Config& config) {
    auto outcome = objective->Evaluate(config, options.budget_rounds, nullptr);
    spent += options.budget_rounds;
    RecordTrial(&result, spent, config, outcome.val_loss,
                outcome.test_accuracy);
    xs.push_back(space.ToUnit(config));
    ys.push_back(outcome.val_loss);
  };

  for (int i = 0; i < options.init_points; ++i) {
    evaluate(space.Sample(rng));
  }

  for (int iter = 0; iter < options.iterations; ++iter) {
    const int n = static_cast<int>(xs.size());
    // Center observations.
    double y_mean = 0.0;
    for (double y : ys) y_mean += y;
    y_mean /= n;

    // K + noise I, factorized.
    std::vector<double> kernel(n * n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        kernel[i * n + j] = RbfKernel(xs[i], xs[j], options.length_scale);
      }
      kernel[i * n + i] += options.noise;
    }
    if (!CholeskyFactor(&kernel, n)) {
      // Degenerate kernel (duplicate points): fall back to random.
      evaluate(space.Sample(rng));
      continue;
    }
    std::vector<double> centered(n);
    for (int i = 0; i < n; ++i) centered[i] = ys[i] - y_mean;
    std::vector<double> alpha = CholeskySolve(kernel, n, centered);

    // Expected improvement over random candidates (minimization).
    const double best_y = *std::min_element(ys.begin(), ys.end());
    Config best_candidate;
    double best_ei = -1.0;
    for (int c = 0; c < options.acq_candidates; ++c) {
      Config candidate = space.Sample(rng);
      Posterior post =
          GpPredict(xs, alpha, kernel, n, space.ToUnit(candidate),
                    options.length_scale, y_mean);
      const double z = (best_y - post.mean) / post.stddev;
      const double ei =
          (best_y - post.mean) * NormalCdf(z) + post.stddev * NormalPdf(z);
      if (ei > best_ei) {
        best_ei = ei;
        best_candidate = candidate;
      }
    }
    evaluate(best_candidate);
  }
  return result;
}

}  // namespace fedscope
