#ifndef FEDSCOPE_HPO_PBT_H_
#define FEDSCOPE_HPO_PBT_H_

#include "fedscope/hpo/search_space.h"

namespace fedscope {

struct PbtOptions {
  int population = 6;
  /// Rounds of training between exploit/explore steps.
  int step_budget = 3;
  int num_steps = 5;
  /// Bottom fraction replaced by (perturbed) copies of the top fraction.
  double exploit_frac = 0.3;
  /// Multiplicative perturbation applied to continuous dims on explore.
  double perturb_factor = 1.25;
};

/// Population-based training (Jaderberg/Li et al.): a population of FL
/// courses trains in parallel; periodically the worst members copy the
/// checkpoints *and* hyperparameters of the best members, with perturbed
/// hyperparameters — online HPO built on the checkpoint mechanism of §4.3.
HpoResult RunPbt(const SearchSpace& space, HpoObjective* objective,
                 const PbtOptions& options, Rng* rng);

}  // namespace fedscope

#endif  // FEDSCOPE_HPO_PBT_H_
