#ifndef FEDSCOPE_HPO_FL_OBJECTIVE_H_
#define FEDSCOPE_HPO_FL_OBJECTIVE_H_

#include <functional>

#include "fedscope/core/fed_runner.h"
#include "fedscope/hpo/search_space.h"

namespace fedscope {

/// HpoObjective backed by a real FL course: each Evaluate call applies the
/// sampled config to a FedJob template (train.* keys override the client
/// training configuration), runs `budget_rounds` rounds — warm-starting
/// from a checkpoint model when given — and reports validation loss and
/// test accuracy of the resulting global model.
///
/// The server-side test set is split once into a validation half (the HPO
/// target) and a test half (reported only), so methods can never overfit
/// the reported metric.
class FlObjective : public HpoObjective {
 public:
  /// `job_factory` builds a fresh FedJob (the dataset pointer must stay
  /// valid). The runner mutates seeds/rounds per evaluation.
  explicit FlObjective(std::function<FedJob()> job_factory,
                       uint64_t split_seed = 17);

  Outcome Evaluate(const Config& config, int budget_rounds,
                   const Model* warm_start) override;

  /// Total FL rounds executed across all evaluations.
  int64_t total_rounds() const { return total_rounds_; }

 private:
  void EnsureSplit(const FedJob& job);

  std::function<FedJob()> job_factory_;
  uint64_t split_seed_;
  bool split_done_ = false;
  Dataset val_half_;
  Dataset test_half_;
  int64_t total_rounds_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_HPO_FL_OBJECTIVE_H_
