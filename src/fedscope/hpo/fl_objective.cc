#include "fedscope/hpo/fl_objective.h"

#include "fedscope/core/trainer.h"
#include "fedscope/util/logging.h"

namespace fedscope {

FlObjective::FlObjective(std::function<FedJob()> job_factory,
                         uint64_t split_seed)
    : job_factory_(std::move(job_factory)), split_seed_(split_seed) {}

void FlObjective::EnsureSplit(const FedJob& job) {
  if (split_done_) return;
  Rng rng(split_seed_);
  const Dataset& pool = job.data->server_test;
  auto perm = rng.Permutation(pool.size());
  const int64_t half = pool.size() / 2;
  val_half_ = pool.Subset(
      std::vector<int64_t>(perm.begin(), perm.begin() + half));
  test_half_ =
      pool.Subset(std::vector<int64_t>(perm.begin() + half, perm.end()));
  split_done_ = true;
}

HpoObjective::Outcome FlObjective::Evaluate(const Config& config,
                                            int budget_rounds,
                                            const Model* warm_start) {
  FedJob job = job_factory_();
  EnsureSplit(job);
  job.client.train = TrainConfig::FromConfig(config, job.client.train);
  job.server.max_rounds = budget_rounds;
  job.server.target_accuracy = 0.0;
  job.server.eval_interval = std::max(budget_rounds, 1);  // eval at the end
  if (warm_start != nullptr) {
    job.init_model = *warm_start;
  }
  FedRunner runner(std::move(job));
  RunResult run = runner.Run();
  total_rounds_ += run.server.rounds;

  Outcome outcome;
  outcome.val_loss = EvaluateClassifier(&run.final_model, val_half_).loss;
  outcome.test_accuracy =
      EvaluateClassifier(&run.final_model, test_half_).accuracy;
  outcome.checkpoint = std::move(run.final_model);
  return outcome;
}

}  // namespace fedscope
