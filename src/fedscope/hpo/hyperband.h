#ifndef FEDSCOPE_HPO_HYPERBAND_H_
#define FEDSCOPE_HPO_HYPERBAND_H_

#include "fedscope/hpo/search_space.h"
#include "fedscope/hpo/successive_halving.h"

namespace fedscope {

struct HyperbandOptions {
  /// Maximum per-configuration budget (rounds) of the final rung.
  int max_budget = 18;
  int eta = 3;
};

/// Hyperband (Li et al., ICLR'17): runs several SHA brackets trading off
/// the number of configurations against per-configuration budget.
HpoResult RunHyperband(const SearchSpace& space, HpoObjective* objective,
                       const HyperbandOptions& options, Rng* rng);

}  // namespace fedscope

#endif  // FEDSCOPE_HPO_HYPERBAND_H_
