#ifndef FEDSCOPE_HPO_SEARCH_SPACE_H_
#define FEDSCOPE_HPO_SEARCH_SPACE_H_

#include <string>
#include <vector>

#include "fedscope/nn/model.h"
#include "fedscope/util/config.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// Hyperparameter search space (auto-tuning plug-in, paper §4.3).
/// Dimensions map to dotted config keys (e.g. "train.lr"), so a sampled
/// point is a Config that can be merged onto a client or job configuration.
class SearchSpace {
 public:
  struct Dimension {
    enum class Type { kDouble, kInt, kCategorical };
    Type type = Type::kDouble;
    std::string name;
    double lo = 0.0, hi = 1.0;
    bool log_scale = false;
    std::vector<double> choices;  // kCategorical
  };

  SearchSpace& AddDouble(const std::string& name, double lo, double hi,
                         bool log_scale = false);
  SearchSpace& AddInt(const std::string& name, int64_t lo, int64_t hi);
  SearchSpace& AddCategorical(const std::string& name,
                              std::vector<double> choices);

  const std::vector<Dimension>& dims() const { return dims_; }
  int num_dims() const { return static_cast<int>(dims_.size()); }

  /// Uniform random point (log-uniform on log dimensions).
  Config Sample(Rng* rng) const;

  /// Full-factorial grid with `per_dim` points per continuous dimension
  /// (categoricals enumerate their choices).
  std::vector<Config> Grid(int per_dim) const;

  /// Normalizes a config into [0,1]^d (for GP-based optimization).
  std::vector<double> ToUnit(const Config& config) const;
  /// Maps a unit vector back to a Config.
  Config FromUnit(const std::vector<double>& unit) const;

 private:
  std::vector<Dimension> dims_;
};

/// The black-box function HPO methods optimize (lower objective = better).
/// Budget is measured in FL rounds; `warm_start` (nullable) restores from
/// a checkpoint — the mechanism behind multi-fidelity methods (§4.3:
/// "FederatedScope can export the snapshot of a training course to a
/// corresponding checkpoint, from which another training course can
/// restore").
class HpoObjective {
 public:
  struct Outcome {
    /// Validation loss (the optimization target).
    double val_loss = 0.0;
    /// Test accuracy of the same model (reported, never optimized on).
    double test_accuracy = 0.0;
    /// Checkpoint for restore.
    Model checkpoint;
  };

  virtual ~HpoObjective() = default;
  virtual Outcome Evaluate(const Config& config, int budget_rounds,
                           const Model* warm_start) = 0;
};

/// One point on the best-seen curve (what Figure 14 plots).
struct HpoEvent {
  double cumulative_budget = 0.0;  // rounds spent so far
  double val_loss = 0.0;           // this evaluation's result
  double best_seen_val_loss = 0.0;
  double test_accuracy = 0.0;
  Config config;
};

struct HpoResult {
  std::vector<HpoEvent> trace;
  Config best_config;
  double best_val_loss = 1e300;
  /// Test accuracy of the best-validation configuration.
  double best_test_accuracy = 0.0;
};

/// Appends an evaluation to the result, maintaining best-seen bookkeeping.
void RecordTrial(HpoResult* result, double budget_spent, const Config& config,
                 double val_loss, double test_accuracy);

}  // namespace fedscope

#endif  // FEDSCOPE_HPO_SEARCH_SPACE_H_
