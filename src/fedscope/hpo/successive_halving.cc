#include "fedscope/hpo/successive_halving.h"

#include <algorithm>
#include <numeric>

#include "fedscope/util/logging.h"

namespace fedscope {

HpoResult RunShaOnConfigs(std::vector<Config> configs,
                          HpoObjective* objective, const ShaOptions& options,
                          double* budget_spent) {
  HpoResult result;
  FS_CHECK(!configs.empty());

  struct Member {
    Config config;
    Model checkpoint;
    bool has_checkpoint = false;
    double val_loss = 1e300;
    double test_accuracy = 0.0;
  };
  std::vector<Member> population;
  population.reserve(configs.size());
  for (auto& config : configs) {
    Member member;
    member.config = std::move(config);
    population.push_back(std::move(member));
  }

  int budget = options.min_budget;
  for (int rung = 0; rung < options.num_rungs && !population.empty();
       ++rung) {
    for (auto& member : population) {
      auto outcome = objective->Evaluate(
          member.config, budget,
          member.has_checkpoint ? &member.checkpoint : nullptr);
      *budget_spent += budget;
      member.checkpoint = std::move(outcome.checkpoint);
      member.has_checkpoint = true;
      member.val_loss = outcome.val_loss;
      member.test_accuracy = outcome.test_accuracy;
      RecordTrial(&result, *budget_spent, member.config, outcome.val_loss,
                  outcome.test_accuracy);
    }
    if (rung + 1 >= options.num_rungs) break;
    // Keep the best 1/eta (at least one).
    std::sort(population.begin(), population.end(),
              [](const Member& a, const Member& b) {
                return a.val_loss < b.val_loss;
              });
    const size_t keep = std::max<size_t>(
        1, population.size() / std::max(options.eta, 2));
    population.resize(keep);
    budget *= options.eta;
  }
  return result;
}

HpoResult RunSuccessiveHalving(const SearchSpace& space,
                               HpoObjective* objective,
                               const ShaOptions& options, Rng* rng) {
  std::vector<Config> configs;
  configs.reserve(options.num_configs);
  for (int i = 0; i < options.num_configs; ++i) {
    configs.push_back(space.Sample(rng));
  }
  double spent = 0.0;
  return RunShaOnConfigs(std::move(configs), objective, options, &spent);
}

}  // namespace fedscope
