#include "fedscope/hpo/fedex.h"

#include <algorithm>
#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {

FedExPolicy::FedExPolicy(std::vector<Config> arms, double step_size,
                         uint64_t seed)
    : arms_(std::move(arms)),
      log_weights_(arms_.size(), 0.0),
      probs_(arms_.size(), 1.0 / std::max<size_t>(arms_.size(), 1)),
      step_size_(step_size),
      rng_(seed) {
  FS_CHECK(!arms_.empty());
}

void FedExPolicy::Normalize() {
  const double max_log =
      *std::max_element(log_weights_.begin(), log_weights_.end());
  double total = 0.0;
  for (size_t a = 0; a < log_weights_.size(); ++a) {
    probs_[a] = std::exp(log_weights_[a] - max_log);
    total += probs_[a];
  }
  for (auto& p : probs_) p /= total;
  // Epsilon floor keeps every arm explorable (importance weights bounded).
  const double eps = 0.01 / probs_.size();
  double renorm = 0.0;
  for (auto& p : probs_) {
    p = std::max(p, eps);
    renorm += p;
  }
  for (auto& p : probs_) p /= renorm;
}

Server::ConfigProvider FedExPolicy::MakeConfigProvider() {
  return [this](int client_id, int /*round*/) {
    const int arm = static_cast<int>(rng_.Categorical(probs_));
    arm_of_client_[client_id] = arm;
    return arms_[arm];
  };
}

Server::FeedbackConsumer FedExPolicy::MakeFeedbackConsumer() {
  return [this](int client_id, int /*round*/, const Payload& payload) {
    auto it = arm_of_client_.find(client_id);
    if (it == arm_of_client_.end()) return;
    if (!payload.HasScalar("val_loss_after")) return;
    // Cost = post-training validation loss (lower is better).
    const double cost = payload.GetDouble("val_loss_after", 0.0);
    Update(it->second, cost);
    arm_of_client_.erase(it);
  };
}

void FedExPolicy::Update(int arm, double cost) {
  // Running-mean baseline reduces the variance of the importance-weighted
  // gradient estimate.
  ++num_updates_;
  baseline_ += (cost - baseline_) / num_updates_;
  const double advantage = cost - baseline_;
  const double grad = advantage / std::max(probs_[arm], 1e-6);
  log_weights_[arm] -= step_size_ * grad;
  // Guard against drift.
  const double cap = 50.0;
  for (auto& w : log_weights_) w = std::clamp(w, -cap, cap);
  Normalize();
}

const Config& FedExPolicy::BestArm() const {
  return arms_[best_arm_index()];
}

int FedExPolicy::best_arm_index() const {
  return static_cast<int>(
      std::max_element(probs_.begin(), probs_.end()) - probs_.begin());
}

std::vector<Config> FedExPolicy::SampleArms(const SearchSpace& space,
                                            int num_arms, Rng* rng) {
  std::vector<Config> arms;
  arms.reserve(num_arms);
  for (int a = 0; a < num_arms; ++a) arms.push_back(space.Sample(rng));
  return arms;
}

HpoResult RunFedExWrapped(const SearchSpace& wrapper_space,
                          const SearchSpace& client_space, int num_arms,
                          const FedExCourseRunner& runner, int wrapper_trials,
                          int budget_rounds, double step_size, Rng* rng) {
  HpoResult result;
  double spent = 0.0;
  for (int trial = 0; trial < wrapper_trials; ++trial) {
    Config wrapper_config = wrapper_space.Sample(rng);
    FedExPolicy policy(
        FedExPolicy::SampleArms(client_space, num_arms, rng), step_size,
        rng->Next());
    FedExCourseResult course =
        runner(wrapper_config, &policy, budget_rounds);
    spent += budget_rounds;
    // Record the wrapper config merged with FedEx's chosen arm.
    Config merged = wrapper_config;
    merged.Merge(policy.BestArm());
    RecordTrial(&result, spent, merged, course.val_loss,
                course.test_accuracy);
  }
  return result;
}

}  // namespace fedscope
