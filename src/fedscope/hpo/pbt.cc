#include "fedscope/hpo/pbt.h"

#include <algorithm>
#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

/// Multiplicative (log-space) perturbation of continuous dimensions;
/// categorical/int dims are resampled with probability 0.25.
Config Perturb(const SearchSpace& space, const Config& config, double factor,
               Rng* rng) {
  Config out = config;
  for (const auto& dim : space.dims()) {
    using Type = SearchSpace::Dimension::Type;
    if (dim.type == Type::kDouble) {
      const double mult = rng->Bernoulli(0.5) ? factor : 1.0 / factor;
      double v = config.GetDouble(dim.name, dim.lo) * mult;
      v = std::clamp(v, dim.lo, dim.hi);
      out.Set(dim.name, v);
    } else if (rng->Bernoulli(0.25)) {
      Config fresh = space.Sample(rng);
      if (dim.type == Type::kInt) {
        out.Set(dim.name, fresh.GetInt(dim.name, 0));
      } else {
        out.Set(dim.name, fresh.GetDouble(dim.name, dim.choices[0]));
      }
    }
  }
  return out;
}

}  // namespace

HpoResult RunPbt(const SearchSpace& space, HpoObjective* objective,
                 const PbtOptions& options, Rng* rng) {
  FS_CHECK_GE(options.population, 2);
  struct Member {
    Config config;
    Model checkpoint;
    bool has_checkpoint = false;
    double val_loss = 1e300;
    double test_accuracy = 0.0;
  };
  std::vector<Member> population(options.population);
  for (auto& member : population) member.config = space.Sample(rng);

  HpoResult result;
  double spent = 0.0;
  for (int step = 0; step < options.num_steps; ++step) {
    for (auto& member : population) {
      auto outcome = objective->Evaluate(
          member.config, options.step_budget,
          member.has_checkpoint ? &member.checkpoint : nullptr);
      spent += options.step_budget;
      member.checkpoint = std::move(outcome.checkpoint);
      member.has_checkpoint = true;
      member.val_loss = outcome.val_loss;
      member.test_accuracy = outcome.test_accuracy;
      RecordTrial(&result, spent, member.config, outcome.val_loss,
                  outcome.test_accuracy);
    }
    if (step + 1 >= options.num_steps) break;

    // Exploit: bottom copies top; explore: perturb the copied config.
    std::vector<size_t> order(population.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return population[a].val_loss < population[b].val_loss;
    });
    const size_t k = std::max<size_t>(
        1, static_cast<size_t>(options.exploit_frac * population.size()));
    for (size_t rank = 0; rank < k && rank + k < order.size(); ++rank) {
      Member& loser = population[order[order.size() - 1 - rank]];
      const Member& winner = population[order[rank]];
      loser.checkpoint = winner.checkpoint;
      loser.has_checkpoint = winner.has_checkpoint;
      loser.config =
          Perturb(space, winner.config, options.perturb_factor, rng);
    }
  }
  return result;
}

}  // namespace fedscope
