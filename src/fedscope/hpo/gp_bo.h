#ifndef FEDSCOPE_HPO_GP_BO_H_
#define FEDSCOPE_HPO_GP_BO_H_

#include "fedscope/hpo/search_space.h"

namespace fedscope {

struct GpBoOptions {
  /// Random evaluations before the GP takes over.
  int init_points = 4;
  /// GP-guided evaluations.
  int iterations = 8;
  int budget_rounds = 10;
  /// RBF kernel length scale on the unit cube.
  double length_scale = 0.3;
  /// Observation noise added to the kernel diagonal.
  double noise = 1e-4;
  /// Random candidates scored by expected improvement per iteration.
  int acq_candidates = 256;
};

/// Bayesian optimization with a Gaussian-process surrogate (RBF kernel,
/// Cholesky inference) and expected-improvement acquisition — the
/// "traditional HPO" family of §4.3 that treats a complete FL course as a
/// black-box function.
HpoResult RunGpBo(const SearchSpace& space, HpoObjective* objective,
                  const GpBoOptions& options, Rng* rng);

/// Small dense Cholesky utilities (exposed for testing).
/// Factorizes the SPD matrix a (n x n, row-major) in place into L (lower).
/// Returns false if not positive definite.
bool CholeskyFactor(std::vector<double>* a, int n);
/// Solves L L^T x = b given the factor from CholeskyFactor.
std::vector<double> CholeskySolve(const std::vector<double>& l, int n,
                                  std::vector<double> b);

}  // namespace fedscope

#endif  // FEDSCOPE_HPO_GP_BO_H_
