#include "fedscope/privacy/secure_aggregator.h"

#include "fedscope/privacy/secret_sharing.h"
#include "fedscope/util/logging.h"

namespace fedscope {

Result<StateDict> SecureAverageAggregator::Aggregate(
    const StateDict& global, const std::vector<ClientUpdate>& updates) {
  if (updates.empty()) {
    return Status::FailedPrecondition("secure_average: no usable updates");
  }
  StateDict next = global;
  if (updates.size() == 1) {
    SdAxpy(&next, 1.0f, updates[0].delta);
    return next;
  }
  std::vector<StateDict> deltas;
  deltas.reserve(updates.size());
  for (const auto& update : updates) deltas.push_back(update.delta);
  StateDict avg = SecretSharedAverage(deltas, &rng_, frac_bits_);
  SdAxpy(&next, 1.0f, avg);
  return next;
}

}  // namespace fedscope
