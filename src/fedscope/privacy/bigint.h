#ifndef FEDSCOPE_PRIVACY_BIGINT_H_
#define FEDSCOPE_PRIVACY_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fedscope/util/rng.h"

namespace fedscope {

/// Arbitrary-precision unsigned integer — the substrate for the Paillier
/// homomorphic cryptosystem (paper §4.1). Little-endian base-2^32 limbs.
/// Supports exactly the operations public-key crypto needs: +, -, *,
/// divmod, modular exponentiation, gcd/lcm, modular inverse, Miller-Rabin
/// primality, and random prime generation.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  static BigInt FromUint64(uint64_t v);
  /// Parses a hexadecimal string (no prefix).
  static BigInt FromHex(const std::string& hex);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits (0 for zero).
  int BitLength() const;
  bool GetBit(int i) const;

  /// Lowest 64 bits.
  uint64_t ToUint64() const;
  std::string ToHex() const;

  // Comparison: -1 / 0 / +1.
  static int Compare(const BigInt& a, const BigInt& b);
  bool operator==(const BigInt& other) const {
    return limbs_ == other.limbs_;
  }
  bool operator<(const BigInt& other) const {
    return Compare(*this, other) < 0;
  }
  bool operator<=(const BigInt& other) const {
    return Compare(*this, other) <= 0;
  }

  static BigInt Add(const BigInt& a, const BigInt& b);
  /// a - b; requires a >= b.
  static BigInt Sub(const BigInt& a, const BigInt& b);
  static BigInt Mul(const BigInt& a, const BigInt& b);
  /// Returns {quotient, remainder}; requires b != 0.
  static std::pair<BigInt, BigInt> DivMod(const BigInt& a, const BigInt& b);
  static BigInt Mod(const BigInt& a, const BigInt& m);

  BigInt ShiftLeft(int bits) const;
  BigInt ShiftRight(int bits) const;

  /// (base^exp) mod m, square-and-multiply. Requires m > 1.
  static BigInt ModPow(const BigInt& base, const BigInt& exp,
                       const BigInt& m);
  static BigInt Gcd(BigInt a, BigInt b);
  static BigInt Lcm(const BigInt& a, const BigInt& b);
  /// Modular inverse of a mod m; returns zero BigInt if none exists.
  static BigInt ModInverse(const BigInt& a, const BigInt& m);

  /// Uniformly random integer with exactly `bits` bits (top bit set).
  static BigInt Random(int bits, Rng* rng);
  /// Uniformly random integer in [0, bound).
  static BigInt RandomBelow(const BigInt& bound, Rng* rng);
  /// Miller-Rabin with `rounds` random bases.
  static bool IsProbablePrime(const BigInt& n, Rng* rng, int rounds = 20);
  /// Random probable prime with exactly `bits` bits.
  static BigInt GeneratePrime(int bits, Rng* rng);

 private:
  void Trim();
  std::vector<uint32_t> limbs_;  // little-endian, no trailing zeros
};

}  // namespace fedscope

#endif  // FEDSCOPE_PRIVACY_BIGINT_H_
