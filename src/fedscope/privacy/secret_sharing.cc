#include "fedscope/privacy/secret_sharing.h"

#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {

AdditiveSecretSharing::AdditiveSecretSharing(int num_shares, int frac_bits)
    : num_shares_(num_shares), frac_bits_(frac_bits) {
  FS_CHECK_GE(num_shares, 2);
  FS_CHECK_GE(frac_bits, 0);
  FS_CHECK_LE(frac_bits, 40);
}

uint64_t AdditiveSecretSharing::Encode(double v) const {
  const double scaled = std::round(v * std::pow(2.0, frac_bits_));
  FS_CHECK(std::fabs(scaled) < 9.0e17) << "secret-sharing overflow";
  // Two's-complement wrap into Z_{2^64}.
  return static_cast<uint64_t>(static_cast<int64_t>(scaled));
}

double AdditiveSecretSharing::Decode(uint64_t enc) const {
  return static_cast<double>(static_cast<int64_t>(enc)) *
         std::pow(2.0, -frac_bits_);
}

std::vector<uint64_t> AdditiveSecretSharing::Split(double value,
                                                   Rng* rng) const {
  std::vector<uint64_t> shares(num_shares_);
  uint64_t acc = 0;
  for (int i = 1; i < num_shares_; ++i) {
    shares[i] = rng->Next();
    acc += shares[i];
  }
  shares[0] = Encode(value) - acc;  // mod 2^64 wraparound
  return shares;
}

std::vector<std::vector<uint64_t>> AdditiveSecretSharing::SplitVector(
    const std::vector<double>& values, Rng* rng) const {
  std::vector<std::vector<uint64_t>> shares(
      num_shares_, std::vector<uint64_t>(values.size()));
  for (size_t j = 0; j < values.size(); ++j) {
    auto s = Split(values[j], rng);
    for (int i = 0; i < num_shares_; ++i) shares[i][j] = s[i];
  }
  return shares;
}

std::vector<uint64_t> AdditiveSecretSharing::SumShares(
    const std::vector<std::vector<uint64_t>>& shares) {
  FS_CHECK(!shares.empty());
  std::vector<uint64_t> out(shares[0].size(), 0);
  for (const auto& share : shares) {
    FS_CHECK_EQ(share.size(), out.size());
    for (size_t j = 0; j < out.size(); ++j) out[j] += share[j];
  }
  return out;
}

std::vector<double> AdditiveSecretSharing::DecodeVector(
    const std::vector<uint64_t>& enc) const {
  std::vector<double> out(enc.size());
  for (size_t j = 0; j < enc.size(); ++j) out[j] = Decode(enc[j]);
  return out;
}

std::vector<double> SecretSharedSum(
    const std::vector<std::vector<double>>& client_values, Rng* rng,
    int frac_bits) {
  const int m = static_cast<int>(client_values.size());
  FS_CHECK_GE(m, 2);
  const size_t width = client_values[0].size();
  AdditiveSecretSharing sharing(m, frac_bits);

  // Phase 1: every client splits its vector; share i goes to peer i.
  // peer_sums[i] accumulates everything peer i received.
  std::vector<std::vector<uint64_t>> peer_sums(
      m, std::vector<uint64_t>(width, 0));
  for (int c = 0; c < m; ++c) {
    FS_CHECK_EQ(client_values[c].size(), width);
    auto shares = sharing.SplitVector(client_values[c], rng);
    for (int peer = 0; peer < m; ++peer) {
      for (size_t j = 0; j < width; ++j) {
        peer_sums[peer][j] += shares[peer][j];
      }
    }
  }
  // Phase 2: the server sums the m partial sums and decodes.
  return sharing.DecodeVector(AdditiveSecretSharing::SumShares(peer_sums));
}

StateDict SecretSharedAverage(const std::vector<StateDict>& updates,
                              Rng* rng, int frac_bits) {
  FS_CHECK_GE(updates.size(), 2u);
  // Flatten every dict in key order (keys must match across updates).
  std::vector<std::vector<double>> rows;
  rows.reserve(updates.size());
  for (const auto& update : updates) {
    std::vector<double> row;
    for (const auto& [name, tensor] : update) {
      for (int64_t i = 0; i < tensor.numel(); ++i) {
        row.push_back(tensor.at(i));
      }
    }
    rows.push_back(std::move(row));
  }
  std::vector<double> sums = SecretSharedSum(rows, rng, frac_bits);

  StateDict avg = updates[0];
  size_t offset = 0;
  const float inv_m = 1.0f / static_cast<float>(updates.size());
  for (auto& [name, tensor] : avg) {
    for (int64_t i = 0; i < tensor.numel(); ++i) {
      tensor.at(i) = static_cast<float>(sums[offset++]) * inv_m;
    }
  }
  FS_CHECK_EQ(offset, sums.size());
  return avg;
}

}  // namespace fedscope
