#include "fedscope/privacy/paillier.h"

#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {

Paillier::KeyPair Paillier::GenerateKeys(int modulus_bits, Rng* rng) {
  FS_CHECK_GE(modulus_bits, 16);
  const int prime_bits = modulus_bits / 2;
  const BigInt one = BigInt::FromUint64(1);
  BigInt p, q, n;
  while (true) {
    p = BigInt::GeneratePrime(prime_bits, rng);
    do {
      q = BigInt::GeneratePrime(prime_bits, rng);
    } while (BigInt::Compare(p, q) == 0);
    n = BigInt::Mul(p, q);
    // gcd(n, (p-1)(q-1)) must be 1; holds for distinct equal-length
    // primes in practice, but re-check to be safe with tiny keys.
    BigInt phi = BigInt::Mul(BigInt::Sub(p, one), BigInt::Sub(q, one));
    if (BigInt::Compare(BigInt::Gcd(n, phi), one) == 0) break;
  }

  KeyPair keys;
  keys.pub.n = n;
  keys.pub.n_squared = BigInt::Mul(n, n);
  keys.priv.lambda =
      BigInt::Lcm(BigInt::Sub(p, BigInt::FromUint64(1)),
                  BigInt::Sub(q, BigInt::FromUint64(1)));
  keys.priv.mu = BigInt::ModInverse(keys.priv.lambda, n);
  FS_CHECK(!keys.priv.mu.IsZero()) << "lambda not invertible mod n";
  return keys;
}

BigInt Paillier::Encrypt(const PublicKey& pub, const BigInt& message,
                         Rng* rng) {
  FS_CHECK(BigInt::Compare(message, pub.n) < 0)
      << "plaintext exceeds modulus";
  // r uniform in [1, n) with gcd(r, n) = 1.
  BigInt r;
  do {
    r = BigInt::RandomBelow(pub.n, rng);
  } while (r.IsZero() ||
           BigInt::Compare(BigInt::Gcd(r, pub.n), BigInt::FromUint64(1)) !=
               0);
  // c = (1 + m*n) * r^n mod n^2 (g = n + 1 shortcut).
  BigInt gm = BigInt::Mod(
      BigInt::Add(BigInt::FromUint64(1), BigInt::Mul(message, pub.n)),
      pub.n_squared);
  BigInt rn = BigInt::ModPow(r, pub.n, pub.n_squared);
  return BigInt::Mod(BigInt::Mul(gm, rn), pub.n_squared);
}

BigInt Paillier::Decrypt(const PublicKey& pub, const PrivateKey& priv,
                         const BigInt& ciphertext) {
  BigInt x = BigInt::ModPow(ciphertext, priv.lambda, pub.n_squared);
  // L(x) = (x - 1) / n.
  BigInt l = BigInt::DivMod(BigInt::Sub(x, BigInt::FromUint64(1)), pub.n)
                 .first;
  return BigInt::Mod(BigInt::Mul(l, priv.mu), pub.n);
}

BigInt Paillier::AddCiphertexts(const PublicKey& pub, const BigInt& a,
                                const BigInt& b) {
  return BigInt::Mod(BigInt::Mul(a, b), pub.n_squared);
}

BigInt Paillier::MulPlain(const PublicKey& pub, const BigInt& ciphertext,
                          const BigInt& scalar) {
  return BigInt::ModPow(ciphertext, scalar, pub.n_squared);
}

FixedPointCodec::FixedPointCodec(BigInt modulus, int frac_bits)
    : modulus_(std::move(modulus)),
      half_modulus_(modulus_.ShiftRight(1)),
      frac_bits_(frac_bits) {
  FS_CHECK_GE(frac_bits, 0);
  FS_CHECK_GT(modulus_.BitLength(), frac_bits + 16)
      << "modulus too small for the fixed-point scale";
}

BigInt FixedPointCodec::Encode(double v) const {
  const double scaled = std::round(v * std::pow(2.0, frac_bits_));
  FS_CHECK(std::fabs(scaled) < 9.0e18) << "fixed-point overflow";
  if (scaled >= 0.0) {
    return BigInt::Mod(BigInt::FromUint64(static_cast<uint64_t>(scaled)),
                       modulus_);
  }
  return BigInt::Sub(
      modulus_, BigInt::Mod(BigInt::FromUint64(
                                static_cast<uint64_t>(-scaled)),
                            modulus_));
}

double FixedPointCodec::Decode(const BigInt& enc) const {
  const double scale = std::pow(2.0, -frac_bits_);
  if (BigInt::Compare(enc, half_modulus_) <= 0) {
    return static_cast<double>(enc.ToUint64()) * scale;
  }
  return -static_cast<double>(BigInt::Sub(modulus_, enc).ToUint64()) * scale;
}

std::vector<double> EncryptedSum(const std::vector<std::vector<double>>& rows,
                                 int modulus_bits, Rng* rng) {
  FS_CHECK(!rows.empty());
  const size_t width = rows[0].size();
  for (const auto& row : rows) FS_CHECK_EQ(row.size(), width);

  auto keys = Paillier::GenerateKeys(modulus_bits, rng);
  FixedPointCodec codec(keys.pub.n);

  // Each "client" encrypts its row; the "server" multiplies ciphertexts.
  std::vector<BigInt> acc(width);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      BigInt enc = Paillier::Encrypt(keys.pub, codec.Encode(rows[r][c]), rng);
      acc[c] = (r == 0) ? enc
                        : Paillier::AddCiphertexts(keys.pub, acc[c], enc);
    }
  }

  std::vector<double> out(width);
  for (size_t c = 0; c < width; ++c) {
    out[c] = codec.Decode(Paillier::Decrypt(keys.pub, keys.priv, acc[c]));
  }
  return out;
}

}  // namespace fedscope
