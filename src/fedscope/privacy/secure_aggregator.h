#ifndef FEDSCOPE_PRIVACY_SECURE_AGGREGATOR_H_
#define FEDSCOPE_PRIVACY_SECURE_AGGREGATOR_H_

#include "fedscope/core/aggregator.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// Secure aggregation plugged into the FL course (paper §4.1: "we develop
/// a secret sharing mechanism for FedAvg"): the round's updates are
/// combined through the n-of-n additive secret-sharing protocol, so the
/// aggregator only ever handles sums of masked shares — no individual
/// update is visible in plaintext. The result is the *unweighted* mean of
/// the deltas (per-client weights would leak |D_i|), applied to the
/// global model.
///
/// Falls back to handing the single update through when only one client
/// reported (secret sharing needs >= 2 parties).
class SecureAverageAggregator : public Aggregator {
 public:
  explicit SecureAverageAggregator(uint64_t seed, int frac_bits = 24)
      : rng_(seed), frac_bits_(frac_bits) {}

  std::string Name() const override { return "secure_average"; }
  Result<StateDict> Aggregate(
      const StateDict& global,
      const std::vector<ClientUpdate>& updates) override;

 private:
  Rng rng_;
  int frac_bits_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_PRIVACY_SECURE_AGGREGATOR_H_
