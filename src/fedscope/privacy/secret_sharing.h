#ifndef FEDSCOPE_PRIVACY_SECRET_SHARING_H_
#define FEDSCOPE_PRIVACY_SECRET_SHARING_H_

#include <cstdint>
#include <vector>

#include "fedscope/nn/model.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// n-of-n additive secret sharing over Z_{2^64} with fixed-point encoding
/// (paper §4.1: "we develop a secret sharing mechanism for FedAvg"). A
/// value v is split into m shares r_1..r_m with sum = Encode(v) (mod 2^64);
/// any m-1 shares are uniformly random and reveal nothing. Summing the
/// per-client share vectors coordinate-wise and decoding yields the sum of
/// the clients' secret values — exactly what FedAvg needs.
class AdditiveSecretSharing {
 public:
  /// `frac_bits` controls the fixed-point resolution (2^-frac_bits).
  explicit AdditiveSecretSharing(int num_shares, int frac_bits = 24);

  int num_shares() const { return num_shares_; }

  uint64_t Encode(double v) const;
  double Decode(uint64_t enc) const;

  /// Splits one value into num_shares() shares.
  std::vector<uint64_t> Split(double value, Rng* rng) const;

  /// Splits a vector into num_shares() share-vectors.
  std::vector<std::vector<uint64_t>> SplitVector(
      const std::vector<double>& values, Rng* rng) const;

  /// Coordinate-wise sum of share vectors (mod 2^64).
  static std::vector<uint64_t> SumShares(
      const std::vector<std::vector<uint64_t>>& shares);

  /// Decodes an aggregated share vector back into doubles.
  std::vector<double> DecodeVector(const std::vector<uint64_t>& enc) const;

 private:
  int num_shares_;
  int frac_bits_;
};

/// Reference protocol run: every client splits its values into one share
/// per peer, shares are exchanged (each peer sums what it received), and
/// the server adds the m partial sums — reconstructing sum_i values_i
/// without any single party seeing another's plaintext. Returns the sums.
std::vector<double> SecretSharedSum(
    const std::vector<std::vector<double>>& client_values, Rng* rng,
    int frac_bits = 24);

/// Secret-shared FedAvg over state dicts: returns the unweighted average
/// of the given updates, computed through the share protocol. Bit-exact
/// equality with the plain average is not expected (fixed-point rounding);
/// agreement is within 2^-frac_bits.
StateDict SecretSharedAverage(const std::vector<StateDict>& updates,
                              Rng* rng, int frac_bits = 24);

}  // namespace fedscope

#endif  // FEDSCOPE_PRIVACY_SECRET_SHARING_H_
