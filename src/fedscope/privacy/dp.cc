#include "fedscope/privacy/dp.h"

#include <cmath>

#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/config.h"
#include "fedscope/util/logging.h"

namespace fedscope {

DpOptions DpOptions::FromConfig(const Config& config) {
  return FromConfig(config, DpOptions());
}

DpOptions DpOptions::FromConfig(const Config& config, DpOptions base) {
  base.enable = config.GetBool("dp.enable", base.enable);
  base.clip_norm = config.GetDouble("dp.clip_norm", base.clip_norm);
  base.noise_multiplier =
      config.GetDouble("dp.noise_multiplier", base.noise_multiplier);
  base.mechanism = config.GetString("dp.mechanism", base.mechanism);
  return base;
}

double ApplyDpToDelta(StateDict* delta, const DpOptions& options, Rng* rng) {
  if (!options.enable) return 0.0;
  FS_CHECK_GT(options.clip_norm, 0.0);

  // Global L2 clip across the whole update.
  double sq = 0.0;
  for (const auto& [name, tensor] : *delta) sq += SquaredNorm(tensor);
  const double norm = std::sqrt(sq);
  if (norm > options.clip_norm) {
    const float scale = static_cast<float>(options.clip_norm / norm);
    for (auto& [name, tensor] : *delta) ScaleInPlace(&tensor, scale);
  }

  const double sigma = options.noise_multiplier * options.clip_norm;
  if (sigma > 0.0) {
    const bool laplace = options.mechanism == "laplace";
    for (auto& [name, tensor] : *delta) {
      for (int64_t i = 0; i < tensor.numel(); ++i) {
        double noise;
        if (laplace) {
          // Laplace(b = sigma / sqrt(2)) has stddev sigma.
          const double b = sigma / std::sqrt(2.0);
          const double u = rng->Uniform() - 0.5;
          noise = -b * std::copysign(1.0, u) *
                  std::log(1.0 - 2.0 * std::fabs(u) + 1e-300);
        } else {
          noise = rng->Normal(0.0, sigma);
        }
        tensor.at(i) += static_cast<float>(noise);
      }
    }
  }
  return norm;
}

double GaussianEpsilon(double noise_multiplier, int steps, double delta) {
  FS_CHECK_GT(noise_multiplier, 0.0);
  FS_CHECK_GT(delta, 0.0);
  FS_CHECK_GT(steps, 0);
  // Single-release epsilon for the Gaussian mechanism:
  //   eps_1 = sqrt(2 ln(1.25/delta)) / z
  // composed over `steps` releases with strong composition:
  //   eps ~= sqrt(2 k ln(1/delta')) eps_1 + k eps_1 (e^{eps_1} - 1)
  const double eps1 =
      std::sqrt(2.0 * std::log(1.25 / delta)) / noise_multiplier;
  const double k = static_cast<double>(steps);
  return std::sqrt(2.0 * k * std::log(1.0 / delta)) * eps1 +
         k * eps1 * (std::exp(eps1) - 1.0);
}

}  // namespace fedscope
