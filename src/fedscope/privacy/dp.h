#ifndef FEDSCOPE_PRIVACY_DP_H_
#define FEDSCOPE_PRIVACY_DP_H_

#include "fedscope/nn/model.h"
#include "fedscope/util/config.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// Differential-privacy behaviour plug-in (paper §4.1, Figure 6): before a
/// client shares its model update, the update is clipped to a maximum L2
/// norm and perturbed with calibrated noise. Enabled per client via
/// configuration, which is how Figure 13 varies the percentage of
/// protected clients.
struct DpOptions {
  bool enable = false;
  /// L2 clipping bound applied to the whole update.
  double clip_norm = 1.0;
  /// Noise multiplier z: per-coordinate sigma = z * clip_norm.
  double noise_multiplier = 0.0;
  /// "gaussian" or "laplace".
  std::string mechanism = "gaussian";

  /// Reads dp.* keys from a Config (dp.enable, dp.clip_norm,
  /// dp.noise_multiplier, dp.mechanism).
  static DpOptions FromConfig(const Config& config);
  static DpOptions FromConfig(const Config& config, DpOptions base);
};

/// Clips `delta` to options.clip_norm and adds noise; no-op when disabled.
/// Returns the pre-clip norm (0 when disabled).
double ApplyDpToDelta(StateDict* delta, const DpOptions& options, Rng* rng);

/// Simple moments-accountant-lite: epsilon for the Gaussian mechanism after
/// `steps` compositions at noise multiplier z and target delta
/// (strong-composition bound; advisory, as the paper notes users must pick
/// budgets for formal guarantees).
double GaussianEpsilon(double noise_multiplier, int steps, double delta);

}  // namespace fedscope

#endif  // FEDSCOPE_PRIVACY_DP_H_
