#include "fedscope/privacy/bigint.h"

#include <algorithm>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

constexpr uint64_t kBase = 1ULL << 32;

}  // namespace

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromUint64(uint64_t v) {
  BigInt out;
  if (v != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(v & 0xFFFFFFFFULL));
    if (v >> 32) out.limbs_.push_back(static_cast<uint32_t>(v >> 32));
  }
  return out;
}

BigInt BigInt::FromHex(const std::string& hex) {
  BigInt out;
  for (char c : hex) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = 10 + (c - 'a');
    } else if (c >= 'A' && c <= 'F') {
      digit = 10 + (c - 'A');
    } else {
      FS_LOG(Fatal) << "bad hex digit: " << c;
      return out;
    }
    out = out.ShiftLeft(4);
    out = Add(out, FromUint64(digit));
  }
  return out;
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  int bits = static_cast<int>(limbs_.size() - 1) * 32;
  uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::GetBit(int i) const {
  const size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t BigInt::ToUint64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

std::string BigInt::ToHex() const {
  if (limbs_.empty()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(digits[(limbs_[i] >> shift) & 0xF]);
    }
  }
  const size_t first = out.find_first_not_of('0');
  return first == std::string::npos ? "0" : out.substr(first);
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& a, const BigInt& b) {
  BigInt out;
  const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum & 0xFFFFFFFFULL);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Trim();
  return out;
}

BigInt BigInt::Sub(const BigInt& a, const BigInt& b) {
  FS_CHECK_GE(Compare(a, b), 0) << "BigInt::Sub underflow";
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Trim();
  return out;
}

BigInt BigInt::Mul(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur & 0xFFFFFFFFULL);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur & 0xFFFFFFFFULL);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftLeft(int bits) const {
  if (IsZero() || bits == 0) return *this;
  const int limb_shift = bits / 32, bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v & 0xFFFFFFFFULL);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftRight(int bits) const {
  if (IsZero() || bits == 0) return *this;
  const int limb_shift = bits / 32, bit_shift = bits % 32;
  if (limb_shift >= static_cast<int>(limbs_.size())) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift > 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v & 0xFFFFFFFFULL);
  }
  out.Trim();
  return out;
}

std::pair<BigInt, BigInt> BigInt::DivMod(const BigInt& a, const BigInt& b) {
  FS_CHECK(!b.IsZero()) << "BigInt division by zero";
  if (Compare(a, b) < 0) return {BigInt(), a};

  // Schoolbook long division in base 2: walk a's bits from the top,
  // shifting the remainder left and subtracting b when possible.
  BigInt quotient, remainder;
  const int bits = a.BitLength();
  quotient.limbs_.assign((bits + 31) / 32, 0);
  for (int i = bits - 1; i >= 0; --i) {
    remainder = remainder.ShiftLeft(1);
    if (a.GetBit(i)) {
      if (remainder.limbs_.empty()) remainder.limbs_.push_back(0);
      remainder.limbs_[0] |= 1;
    }
    if (Compare(remainder, b) >= 0) {
      remainder = Sub(remainder, b);
      quotient.limbs_[i / 32] |= (1U << (i % 32));
    }
  }
  quotient.Trim();
  remainder.Trim();
  return {quotient, remainder};
}

BigInt BigInt::Mod(const BigInt& a, const BigInt& m) {
  return DivMod(a, m).second;
}

BigInt BigInt::ModPow(const BigInt& base, const BigInt& exp,
                      const BigInt& m) {
  FS_CHECK_GT(m.BitLength(), 1);
  BigInt result = FromUint64(1);
  BigInt b = Mod(base, m);
  const int bits = exp.BitLength();
  for (int i = 0; i < bits; ++i) {
    if (exp.GetBit(i)) result = Mod(Mul(result, b), m);
    b = Mod(Mul(b, b), m);
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  while (!b.IsZero()) {
    BigInt r = Mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  return DivMod(Mul(a, b), Gcd(a, b)).first;
}

BigInt BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid with sign tracking: old_s may be negative.
  BigInt r0 = Mod(a, m), r1 = m;
  BigInt s0 = FromUint64(1), s1;
  bool s0_neg = false, s1_neg = false;
  // Invariants: r0 = ±s0 * a (mod m), r1 = ±s1 * a (mod m).
  while (!r1.IsZero()) {
    auto [q, r2] = DivMod(r0, r1);
    // s2 = s0 - q * s1 (with signs).
    BigInt qs1 = Mul(q, s1);
    BigInt s2;
    bool s2_neg;
    if (s0_neg == s1_neg) {
      // s0 and q*s1 have the same sign: subtraction.
      if (Compare(s0, qs1) >= 0) {
        s2 = Sub(s0, qs1);
        s2_neg = s0_neg;
      } else {
        s2 = Sub(qs1, s0);
        s2_neg = !s0_neg;
      }
    } else {
      s2 = Add(s0, qs1);
      s2_neg = s0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    s0 = std::move(s1);
    s0_neg = s1_neg;
    s1 = std::move(s2);
    s1_neg = s2_neg;
  }
  if (Compare(r0, FromUint64(1)) != 0) return BigInt();  // not invertible
  if (s0_neg) return Sub(m, Mod(s0, m));
  return Mod(s0, m);
}

BigInt BigInt::Random(int bits, Rng* rng) {
  FS_CHECK_GT(bits, 0);
  BigInt out;
  out.limbs_.assign((bits + 31) / 32, 0);
  for (auto& limb : out.limbs_) {
    limb = static_cast<uint32_t>(rng->Next());
  }
  // Clear bits above `bits`, set the top bit.
  const int top = (bits - 1) % 32;
  uint32_t mask = (top == 31) ? 0xFFFFFFFFU : ((1U << (top + 1)) - 1);
  out.limbs_.back() &= mask;
  out.limbs_.back() |= (1U << top);
  out.Trim();
  return out;
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng* rng) {
  FS_CHECK(!bound.IsZero());
  const int bits = bound.BitLength();
  while (true) {
    BigInt candidate;
    candidate.limbs_.assign((bits + 31) / 32, 0);
    for (auto& limb : candidate.limbs_) {
      limb = static_cast<uint32_t>(rng->Next());
    }
    const int top = (bits - 1) % 32;
    uint32_t mask = (top == 31) ? 0xFFFFFFFFU : ((1U << (top + 1)) - 1);
    candidate.limbs_.back() &= mask;
    candidate.Trim();
    if (Compare(candidate, bound) < 0) return candidate;
  }
}

bool BigInt::IsProbablePrime(const BigInt& n, Rng* rng, int rounds) {
  if (n.BitLength() <= 1) return false;  // 0, 1
  const BigInt one = FromUint64(1);
  const BigInt two = FromUint64(2);
  if (Compare(n, FromUint64(3)) <= 0) return true;  // 2, 3
  if (!n.IsOdd()) return false;

  // Quick trial division by small primes.
  static const uint32_t kSmallPrimes[] = {3,  5,  7,  11, 13, 17, 19, 23,
                                          29, 31, 37, 41, 43, 47, 53, 59};
  for (uint32_t p : kSmallPrimes) {
    BigInt bp = FromUint64(p);
    if (Compare(n, bp) == 0) return true;
    if (Mod(n, bp).IsZero()) return false;
  }

  // n - 1 = d * 2^r with d odd.
  BigInt n_minus_1 = Sub(n, one);
  BigInt d = n_minus_1;
  int r = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++r;
  }

  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    BigInt a = Add(two, RandomBelow(Sub(n, FromUint64(4)), rng));
    BigInt x = ModPow(a, d, n);
    if (Compare(x, one) == 0 || Compare(x, n_minus_1) == 0) continue;
    bool witness = true;
    for (int i = 0; i < r - 1; ++i) {
      x = Mod(Mul(x, x), n);
      if (Compare(x, n_minus_1) == 0) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt BigInt::GeneratePrime(int bits, Rng* rng) {
  FS_CHECK_GE(bits, 4);
  while (true) {
    BigInt candidate = Random(bits, rng);
    if (!candidate.IsOdd()) {
      candidate = Add(candidate, FromUint64(1));
      if (candidate.BitLength() != bits) continue;
    }
    if (IsProbablePrime(candidate, rng, 16)) return candidate;
  }
}

}  // namespace fedscope
