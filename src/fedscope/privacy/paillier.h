#ifndef FEDSCOPE_PRIVACY_PAILLIER_H_
#define FEDSCOPE_PRIVACY_PAILLIER_H_

#include <vector>

#include "fedscope/nn/model.h"
#include "fedscope/privacy/bigint.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// The Paillier additively-homomorphic cryptosystem (paper §4.1: "we
/// implement a widely-used homomorphic encryption algorithm Paillier and
/// apply it in a cross-silo FL task"). With g = n + 1:
///   Enc(m) = (1 + m n) r^n mod n^2,      Dec(c) = L(c^lambda mod n^2) mu mod n
/// where L(x) = (x - 1) / n and mu = lambda^{-1} mod n. Ciphertexts add:
///   Dec(Enc(a) * Enc(b) mod n^2) = a + b (mod n)
/// which lets the server aggregate client updates it cannot read.
class Paillier {
 public:
  struct PublicKey {
    BigInt n;
    BigInt n_squared;
  };
  struct PrivateKey {
    BigInt lambda;
    BigInt mu;
  };
  struct KeyPair {
    PublicKey pub;
    PrivateKey priv;
  };

  /// Generates a key pair with an n of roughly `modulus_bits` bits
  /// (two primes of modulus_bits/2). Keep small (128-512) in tests: the
  /// BigInt substrate favours clarity over speed.
  static KeyPair GenerateKeys(int modulus_bits, Rng* rng);

  static BigInt Encrypt(const PublicKey& pub, const BigInt& message,
                        Rng* rng);
  static BigInt Decrypt(const PublicKey& pub, const PrivateKey& priv,
                        const BigInt& ciphertext);

  /// Homomorphic addition of plaintexts: Enc(a) (+) Enc(b).
  static BigInt AddCiphertexts(const PublicKey& pub, const BigInt& a,
                               const BigInt& b);
  /// Homomorphic scalar multiplication: Enc(a)^k = Enc(k a).
  static BigInt MulPlain(const PublicKey& pub, const BigInt& ciphertext,
                         const BigInt& scalar);
};

/// Fixed-point encoding of signed doubles into the Paillier plaintext
/// space: v -> round(v * 2^frac_bits) mod n (negatives wrap to n - |v|).
/// Decoding maps values above n/2 back to negative doubles. `slack_bits`
/// of headroom must remain so that sums of up to 2^slack_bits encodings do
/// not wrap.
class FixedPointCodec {
 public:
  FixedPointCodec(BigInt modulus, int frac_bits = 24);

  BigInt Encode(double v) const;
  double Decode(const BigInt& enc) const;

 private:
  BigInt modulus_;
  BigInt half_modulus_;
  int frac_bits_;
};

/// Demonstration of encrypted federated aggregation: encrypts each client's
/// flattened update, homomorphically sums the ciphertexts, decrypts the
/// totals and returns the (plain) sum vector. Used by the cross-silo
/// example and tests; the values vector should stay small (BigInt is slow).
std::vector<double> EncryptedSum(const std::vector<std::vector<double>>& rows,
                                 int modulus_bits, Rng* rng);

}  // namespace fedscope

#endif  // FEDSCOPE_PRIVACY_PAILLIER_H_
