#include "fedscope/core/client.h"

#include <algorithm>
#include <utility>

#include "fedscope/comm/compression.h"
#include "fedscope/core/checkpoint.h"
#include "fedscope/core/events.h"
#include "fedscope/obs/obs_context.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

/// Payload keys used by the built-in FL course.
constexpr char kModelKey[] = "model";
constexpr char kDeltaKey[] = "delta";

/// Wire bytes of a state dict stored under a key prefix of `prefix_size`
/// characters, matching Payload::ByteSize accounting ("<prefix>/<name>"
/// keys) without materializing the payload. Used for pre-compression size
/// metrics so the off path builds nothing extra.
int64_t StateDictPayloadBytes(const StateDict& state, size_t prefix_size) {
  int64_t bytes = 0;
  for (const auto& [name, tensor] : state) {
    bytes += static_cast<int64_t>(prefix_size + 1 + name.size()) + 16 +
             tensor.numel() * static_cast<int64_t>(sizeof(float)) +
             tensor.ndim() * 8;
  }
  return bytes;
}

}  // namespace

Client::Client(int id, ClientOptions options, Model model, SplitDataset data,
               std::unique_ptr<BaseTrainer> trainer, CommChannel* channel)
    : BaseWorker(id, channel),
      options_(std::move(options)),
      model_(std::move(model)),
      data_(std::move(data)),
      trainer_(std::move(trainer)),
      rng_(options_.seed != 0 ? options_.seed
                              : static_cast<uint64_t>(id) + 77),
      response_model_(options_.jitter_sigma) {
  FS_CHECK(trainer_ != nullptr);
  RegisterDefaultHandlers();
}

void Client::RegisterDefaultHandlers() {
  registry_.Register(
      events::kModelPara,
      [this](const Message& msg) { OnModelPara(msg); },
      /*emits=*/{events::kModelUpdate});
  registry_.Register(
      events::kEvaluate, [this](const Message& msg) { OnEvaluate(msg); },
      /*emits=*/{events::kMetrics});
  registry_.Register(
      events::kFinish, [this](const Message& msg) { OnFinish(msg); });
  registry_.Register(events::kAssignId, [](const Message&) {});
  // Default performance_drop behaviour: count and log; with
  // reject_harmful_global the client additionally rolls back to its
  // pre-load parameters ("choose the most suitable snapshot", §3.4.1).
  // Users overwrite this handler for other personalization policies.
  registry_.Register(events::kPerformanceDrop, [this](const Message&) {
    ++perf_drop_count_;
    if (options_.reject_harmful_global && !pre_load_snapshot_.empty()) {
      FS_CHECK_OK(model_.LoadStateDict(pre_load_snapshot_));
      ++rejected_globals_;
      FS_LOG(Debug) << "client " << id_
                    << " rejected a harmful global snapshot";
    } else {
      FS_LOG(Debug) << "client " << id_ << " observed a performance drop";
    }
  });
  // Default low_bandwidth behaviour: decline the training request (the
  // server frees the slot). Combined with the every-other-request check
  // in OnModelPara this halves the communication frequency.
  registry_.Register(
      events::kLowBandwidth,
      [this](const Message& msg) {
        ++declined_count_;
        if (obs_ != nullptr) obs_->Count("fs_client_declines_total");
        Message reply;
        // Reply to whoever asked: the root server in flat topologies
        // (sender 0 == kServerId), the shard's edge aggregator otherwise.
        reply.receiver = msg.sender;
        reply.msg_type = events::kModelUpdate;
        reply.state = msg.state;
        reply.payload.SetInt("declined", 1);
        // Only a tiny control message crosses the (slow) uplink.
        WorkEstimate work;
        work.up_bytes = 64;
        ResponseOutcome outcome =
            response_model_.Simulate(options_.device, work, &rng_);
        if (outcome.crashed) return;
        reply.timestamp = msg.timestamp + outcome.latency_seconds;
        Send(std::move(reply));
      },
      /*emits=*/{events::kModelUpdate});
}

void Client::JoinIn() {
  Message msg;
  msg.receiver = kServerId;
  msg.msg_type = events::kJoinIn;
  msg.timestamp = current_time_;
  // Prior responsiveness estimate from device information (paper §3.3.1-ii:
  // "estimated from device information or historical responses").
  const double score =
      ResponsivenessScores({options_.device})[0];
  msg.payload.SetDouble("resp_score", score);
  msg.payload.SetInt("num_train", data_.train.size());
  Send(std::move(msg));
}

void Client::ExportResume(Payload* p) {
  SetPackedU64s(p, "rng", rng_.SaveState());
  p->SetDouble("time", current_time_);
  p->SetInt("finished", finished_ ? 1 : 0);
  p->SetInt("rounds_trained", rounds_trained_);
  p->SetInt("perf_drops", perf_drop_count_);
  p->SetInt("declined", declined_count_);
  // The every-other-request parity of the low_bandwidth behaviour lives in
  // this counter — dropping it would flip which requests get declined.
  p->SetInt("lb_requests", low_bandwidth_requests_);
  p->SetInt("rejected_globals", rejected_globals_);
  p->SetInt("shard_epoch", shard_epoch_);
  p->SetInt("stale_epoch_rejected", stale_epoch_rejected_);
  p->SetDouble("last_val_accuracy", last_val_accuracy_);
  const StateDict model_state = model_.GetStateDict();
  p->SetInt("model_params", static_cast<int64_t>(model_state.size()));
  p->SetStateDict("model", model_state);
  p->SetInt("trainer_saved", 1);
  trainer_->SaveState(p, "trainer");
}

void Client::RestoreResume(const Payload& p) {
  if (p.HasScalar("rng")) {
    FS_CHECK_OK(rng_.LoadState(GetPackedU64s(p, "rng")));
  }
  current_time_ = p.GetDouble("time", current_time_);
  finished_ = p.GetInt("finished", 0) != 0;
  rounds_trained_ = static_cast<int>(p.GetInt("rounds_trained", 0));
  perf_drop_count_ = static_cast<int>(p.GetInt("perf_drops", 0));
  declined_count_ = static_cast<int>(p.GetInt("declined", 0));
  low_bandwidth_requests_ = static_cast<int>(p.GetInt("lb_requests", 0));
  rejected_globals_ = static_cast<int>(p.GetInt("rejected_globals", 0));
  shard_epoch_ = p.GetInt("shard_epoch", 0);
  stale_epoch_rejected_ = p.GetInt("stale_epoch_rejected", 0);
  last_val_accuracy_ = p.GetDouble("last_val_accuracy", -1.0);
  if (p.HasScalar("model_params")) {
    const StateDict model_state = p.GetStateDict("model");
    FS_CHECK_EQ(static_cast<int64_t>(model_state.size()),
                p.GetInt("model_params"));
    FS_CHECK_OK(model_.LoadStateDict(model_state, /*strict=*/true));
  }
  if (p.GetInt("trainer_saved", 0) != 0) {
    trainer_->LoadState(p, "trainer", model_);
  }
}

EvalResult Client::EvaluateLocalTest() {
  return trainer_->Evaluate(&model_, data_.test);
}

EvalResult Client::EvaluateLocalVal() {
  return trainer_->Evaluate(&model_, data_.val);
}

void Client::PoisonTrainData(const std::function<void(Dataset*)>& poisoner) {
  poisoner(&data_.train);
}

void Client::OnModelPara(const Message& msg) {
  if (finished_) return;

  // Hierarchical topologies stamp broadcasts with the shard's session
  // epoch. A broadcast below the highest epoch seen comes from a
  // superseded aggregator incarnation (the shard failed over); training
  // on it would waste the round, so it is rejected outright. Flat
  // broadcasts carry no epoch and skip this entirely.
  if (msg.payload.HasScalar("shard_epoch")) {
    const int64_t epoch = msg.payload.GetInt("shard_epoch", 0);
    if (epoch < shard_epoch_) {
      ++stale_epoch_rejected_;
      FS_LOG(Debug) << "client " << id_ << " rejecting model_para at epoch "
                    << epoch << " (current " << shard_epoch_ << ")";
      return;
    }
    shard_epoch_ = epoch;
  }

  // Bandwidth-aware behaviour: a client below its bandwidth threshold
  // declines every other training request (condition-checking event of
  // §3.2, "use low_bandwidth to reduce the communication frequency").
  if (options_.low_bandwidth_threshold > 0.0 &&
      std::min(options_.device.up_bandwidth,
               options_.device.down_bandwidth) <
          options_.low_bandwidth_threshold) {
    if (++low_bandwidth_requests_ % 2 == 1) {
      RaiseEvent(events::kLowBandwidth, msg);
      return;
    }
  }

  // Per-round configuration re-specification (FedEx manager plug-in, §4.3,
  // Figure 8): the broadcast may carry hpo.* scalars overriding the native
  // training configuration for this round only.
  TrainConfig round_config = options_.train;
  if (msg.payload.HasScalar("hpo.lr")) {
    round_config.lr = msg.payload.GetDouble("hpo.lr", round_config.lr);
  }
  if (msg.payload.HasScalar("hpo.local_steps")) {
    round_config.local_steps = static_cast<int>(
        msg.payload.GetInt("hpo.local_steps", round_config.local_steps));
  }
  if (msg.payload.HasScalar("hpo.weight_decay")) {
    round_config.weight_decay =
        msg.payload.GetDouble("hpo.weight_decay", round_config.weight_decay);
  }
  if (msg.payload.HasScalar("hpo.momentum")) {
    round_config.momentum =
        msg.payload.GetDouble("hpo.momentum", round_config.momentum);
  }

  const StateDict global_shared = msg.payload.GetStateDict(kModelKey);

  // Validation feedback before/after incorporating the global model — used
  // both by performance_drop detection and as FedEx feedback.
  double val_acc_before = -1.0, val_loss_before = -1.0;
  const bool want_feedback = options_.perf_drop_threshold > 0.0 ||
                             msg.payload.HasScalar("hpo.want_feedback");
  if (want_feedback && !data_.val.empty()) {
    EvalResult before = trainer_->Evaluate(&model_, data_.val);
    val_acc_before = before.accuracy;
    val_loss_before = before.loss;
  }

  if (options_.perf_drop_threshold > 0.0) {
    pre_load_snapshot_ = model_.GetStateDict();
  }
  trainer_->UpdateModel(&model_, global_shared);

  if (options_.perf_drop_threshold > 0.0 && !data_.val.empty() &&
      last_val_accuracy_ >= 0.0) {
    EvalResult after_load = trainer_->Evaluate(&model_, data_.val);
    if (after_load.accuracy <
        last_val_accuracy_ - options_.perf_drop_threshold) {
      RaiseEvent(events::kPerformanceDrop, msg);
    }
  }
  pre_load_snapshot_.clear();

  // Local training, decoupled into the Trainer (Figure 5).
  const StateDict before =
      trainer_->GetShareableState(&model_, options_.share_filter);
  TrainResult train_result =
      trainer_->Train(&model_, data_.train, round_config, &rng_);
  ++rounds_trained_;
  StateDict delta = SdSub(
      trainer_->GetShareableState(&model_, options_.share_filter), before);

  // Participant plug-in: a malicious client may rewrite the update.
  if (update_poisoner_) update_poisoner_(&delta);

  // Behaviour plug-in: privacy protection by noise injection (Figure 6).
  ApplyDpToDelta(&delta, options_.dp, &rng_);

  double val_loss_after = -1.0, val_acc_after = -1.0;
  if (want_feedback && !data_.val.empty()) {
    EvalResult after = trainer_->Evaluate(&model_, data_.val);
    val_loss_after = after.loss;
    val_acc_after = after.accuracy;
    last_val_accuracy_ = after.accuracy;
  } else if (options_.perf_drop_threshold > 0.0 && !data_.val.empty()) {
    last_val_accuracy_ = trainer_->Evaluate(&model_, data_.val).accuracy;
  }

  const bool record_obs = obs_ != nullptr && obs_->recording_metrics();

  Message reply;
  // Reply to the sender: the root server in flat topologies (sender 0 ==
  // kServerId), the shard's edge aggregator in hierarchical ones.
  reply.receiver = msg.sender;
  reply.msg_type = events::kModelUpdate;
  reply.state = msg.state;  // the round this update is based on
  // Message-transform operator: optionally compress the update before it
  // leaves the device (the server decompresses transparently).
  // `update_bytes` is the wire size of the (possibly compressed) update
  // alone, excluding the scalar metadata added below.
  int64_t update_bytes = 0;
  if (options_.compression == "quant8") {
    Payload compressed = QuantizeStateDict(delta);
    if (record_obs) update_bytes = compressed.ByteSize();
    reply.payload.Merge(compressed);
  } else if (options_.compression == "topk") {
    Payload compressed =
        SparsifyStateDict(delta, options_.compression_keep_frac);
    if (record_obs) update_bytes = compressed.ByteSize();
    reply.payload.Merge(compressed);
  } else {
    reply.payload.SetStateDict(kDeltaKey, delta);
    if (record_obs) {
      update_bytes = StateDictPayloadBytes(delta, sizeof(kDeltaKey) - 1);
    }
  }
  if (record_obs) {
    const MetricLabels codec_label = {{"codec", options_.compression}};
    obs_->Count("fs_client_updates_total", 1.0, codec_label);
    obs_->Count("fs_client_update_bytes_total",
                static_cast<double>(update_bytes), codec_label);
    obs_->Count("fs_client_update_raw_bytes_total",
                static_cast<double>(
                    StateDictPayloadBytes(delta, sizeof(kDeltaKey) - 1)),
                codec_label);
    const MetricLabels client_label = {{"client", std::to_string(id_)}};
    obs_->Count("fs_client_rounds_total", 1.0, client_label);
    obs_->Count("fs_client_train_steps_total",
                static_cast<double>(train_result.local_steps), client_label);
    obs_->Count("fs_client_train_samples_total",
                static_cast<double>(train_result.num_samples), client_label);
  }
  reply.payload.SetInt("num_samples", train_result.num_samples);
  reply.payload.SetInt("local_steps", train_result.local_steps);
  reply.payload.SetDouble("train_loss", train_result.mean_loss);
  if (val_loss_after >= 0.0) {
    reply.payload.SetDouble("val_loss_before", val_loss_before);
    reply.payload.SetDouble("val_loss_after", val_loss_after);
    reply.payload.SetDouble("val_acc_before", val_acc_before);
    reply.payload.SetDouble("val_acc_after", val_acc_after);
  }

  // Virtual-time latency of download + local compute + upload
  // (FedScale-style estimation, §5.3.1).
  WorkEstimate work;
  work.samples_processed = train_result.num_samples;
  work.down_bytes = msg.payload.ByteSize();
  work.up_bytes = reply.payload.ByteSize();
  ResponseOutcome outcome =
      response_model_.Simulate(options_.device, work, &rng_);
  if (outcome.crashed) {
    FS_LOG(Debug) << "client " << id_ << " crashed during round "
                  << msg.state;
    if (obs_ != nullptr) obs_->Count("fs_client_crashes_total");
    return;  // never responds
  }
  if (obs_ != nullptr) {
    obs_->Observe("fs_client_latency_seconds", LatencyBounds(),
                  outcome.latency_seconds);
    if (obs_->tracer != nullptr) {
      obs_->tracer->Span("client_round", msg.timestamp,
                         outcome.latency_seconds, id_,
                         {{"round", std::to_string(msg.state)}});
    }
  }
  reply.timestamp = msg.timestamp + outcome.latency_seconds;
  Send(std::move(reply));
}

void Client::OnEvaluate(const Message& msg) {
  EvalResult test = trainer_->Evaluate(&model_, data_.test);
  Message reply;
  reply.receiver = msg.sender;
  reply.msg_type = events::kMetrics;
  reply.state = msg.state;
  reply.timestamp = msg.timestamp;
  reply.payload.SetDouble("test_loss", test.loss);
  reply.payload.SetDouble("test_acc", test.accuracy);
  reply.payload.SetInt("test_n", test.num_examples);
  Send(std::move(reply));
}

void Client::OnFinish(const Message& msg) {
  (void)msg;
  finished_ = true;
}

}  // namespace fedscope
