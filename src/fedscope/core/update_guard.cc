#include "fedscope/core/update_guard.h"

#include <cmath>
#include <vector>

#include "fedscope/core/checkpoint.h"
#include "fedscope/util/logging.h"

namespace fedscope {

const char* GuardReasonLabel(GuardVerdict verdict) {
  switch (verdict) {
    case GuardVerdict::kRejectSignature: return "signature";
    case GuardVerdict::kRejectNonFinite: return "non_finite";
    case GuardVerdict::kRejectNorm: return "norm";
    case GuardVerdict::kAccept:
    case GuardVerdict::kClip:
      break;
  }
  return "none";
}

UpdateGuard::UpdateGuard(UpdateGuardOptions options)
    : options_(options) {
  FS_CHECK_GE(options_.l2_bound, 0.0);
  FS_CHECK_GE(options_.quarantine_after, 0);
}

GuardDecision UpdateGuard::Inspect(int client_id, const StateDict& signature,
                                   StateDict* delta, bool track_violations) {
  GuardDecision decision;
  if (!options_.enabled) return decision;

  // Signature: exactly the broadcast tensor names, each with the broadcast
  // shape (shape equality implies element-count equality).
  if (delta->size() != signature.size()) {
    decision.verdict = GuardVerdict::kRejectSignature;
    decision.detail = "tensor count " + std::to_string(delta->size()) +
                      " != " + std::to_string(signature.size());
  } else {
    for (const auto& [name, tensor] : signature) {
      const auto it = delta->find(name);
      if (it == delta->end()) {
        decision.verdict = GuardVerdict::kRejectSignature;
        decision.detail = "missing tensor " + name;
        break;
      }
      if (it->second.shape() != tensor.shape()) {
        decision.verdict = GuardVerdict::kRejectSignature;
        decision.detail = "shape mismatch for " + name;
        break;
      }
    }
  }

  // NaN/Inf screen and L2 norm in one pass over the (now shape-checked)
  // payload.
  double sq_norm = 0.0;
  if (decision.verdict == GuardVerdict::kAccept) {
    for (const auto& [name, tensor] : *delta) {
      for (int64_t i = 0; i < tensor.numel(); ++i) {
        const float v = tensor.at(i);
        if (!std::isfinite(v)) {
          decision.verdict = GuardVerdict::kRejectNonFinite;
          decision.detail = "non-finite element in " + name;
          break;
        }
        sq_norm += static_cast<double>(v) * v;
      }
      if (decision.verdict != GuardVerdict::kAccept) break;
    }
  }

  if (decision.verdict == GuardVerdict::kAccept && options_.l2_bound > 0.0) {
    const double norm = std::sqrt(sq_norm);
    if (norm > options_.l2_bound) {
      if (options_.clip_to_bound) {
        const float scale = static_cast<float>(options_.l2_bound / norm);
        for (auto& [name, tensor] : *delta) {
          for (int64_t i = 0; i < tensor.numel(); ++i) tensor.at(i) *= scale;
        }
        decision.verdict = GuardVerdict::kClip;
      } else {
        decision.verdict = GuardVerdict::kRejectNorm;
      }
      decision.detail = "l2 norm " + std::to_string(norm) + " > bound " +
                        std::to_string(options_.l2_bound);
    }
  }

  if (decision.rejected() && track_violations) {
    decision.quarantine = RecordViolation(client_id);
  }
  return decision;
}

bool UpdateGuard::RecordViolation(int client_id) {
  const int count = ++violations_[client_id];
  if (options_.quarantine_after <= 0) return false;
  if (count < options_.quarantine_after) return false;
  return quarantined_.insert(client_id).second;
}

void UpdateGuard::SaveState(Payload* p, const std::string& prefix) const {
  std::vector<int64_t> pairs;
  pairs.reserve(violations_.size() * 2);
  for (const auto& [id, count] : violations_) {
    pairs.push_back(id);
    pairs.push_back(count);
  }
  SetPackedInt64s(p, prefix + "/violations", pairs);
  std::vector<int64_t> ids(quarantined_.begin(), quarantined_.end());
  SetPackedInt64s(p, prefix + "/quarantined", ids);
}

void UpdateGuard::LoadState(const Payload& p, const std::string& prefix) {
  violations_.clear();
  quarantined_.clear();
  const std::vector<int64_t> pairs =
      GetPackedInt64s(p, prefix + "/violations");
  for (size_t i = 0; i + 1 < pairs.size(); i += 2) {
    violations_[static_cast<int>(pairs[i])] = static_cast<int>(pairs[i + 1]);
  }
  for (int64_t id : GetPackedInt64s(p, prefix + "/quarantined")) {
    quarantined_.insert(static_cast<int>(id));
  }
}

}  // namespace fedscope
