#include "fedscope/core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <variant>

#include "fedscope/comm/codec.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

constexpr char kStateKey[] = "global";
constexpr char kCourseKey[] = "course";
constexpr char kFormatV1[] = "fedscope-checkpoint-v1";
constexpr char kFormatV2[] = "fedscope-checkpoint-v2";

constexpr std::array<uint8_t, 4> kFileMagic = {'F', 'S', 'N', 'P'};
constexpr uint32_t kFileVersion = 1;
constexpr size_t kFileHeaderSize = 4 + 4 + 8 + 4;
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotExtension[] = ".ckpt";

/// Standard reflected CRC-32 (polynomial 0xEDB88320, as in zip/zlib).
uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

template <typename T>
void AppendWord(std::vector<uint8_t>* out, T value) {
  const size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

template <typename T>
T ReadWord(const uint8_t* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

/// Packs a vector of 8-byte words into a binary-safe string scalar.
template <typename T>
void SetPackedWords(Payload* p, const std::string& key,
                    const std::vector<T>& v) {
  static_assert(sizeof(T) == 8);
  std::string bytes(v.size() * sizeof(T), '\0');
  if (!v.empty()) std::memcpy(bytes.data(), v.data(), bytes.size());
  p->SetString(key, std::move(bytes));
}

template <typename T>
std::vector<T> GetPackedWords(const Payload& p, const std::string& key) {
  static_assert(sizeof(T) == 8);
  const std::string bytes = p.GetString(key);
  std::vector<T> v(bytes.size() / sizeof(T));
  if (!v.empty()) std::memcpy(v.data(), bytes.data(), v.size() * sizeof(T));
  return v;
}

}  // namespace

void SetPackedU64s(Payload* p, const std::string& key,
                   const std::vector<uint64_t>& v) {
  SetPackedWords(p, key, v);
}
std::vector<uint64_t> GetPackedU64s(const Payload& p, const std::string& key) {
  return GetPackedWords<uint64_t>(p, key);
}
void SetPackedInt64s(Payload* p, const std::string& key,
                     const std::vector<int64_t>& v) {
  SetPackedWords(p, key, v);
}
std::vector<int64_t> GetPackedInt64s(const Payload& p,
                                     const std::string& key) {
  return GetPackedWords<int64_t>(p, key);
}
void SetPackedDoubles(Payload* p, const std::string& key,
                      const std::vector<double>& v) {
  SetPackedWords(p, key, v);
}
std::vector<double> GetPackedDoubles(const Payload& p,
                                     const std::string& key) {
  return GetPackedWords<double>(p, key);
}

void MergePayloadWithPrefix(Payload* dst, const std::string& prefix,
                            const Payload& src) {
  for (const auto& [key, value] : src.scalars()) {
    const std::string out_key = prefix + "/" + key;
    if (std::holds_alternative<int64_t>(value)) {
      dst->SetInt(out_key, std::get<int64_t>(value));
    } else if (std::holds_alternative<double>(value)) {
      dst->SetDouble(out_key, std::get<double>(value));
    } else {
      dst->SetString(out_key, std::get<std::string>(value));
    }
  }
  for (const auto& [key, tensor] : src.tensors()) {
    dst->SetTensor(prefix + "/" + key, tensor);
  }
}

Payload ExtractPayloadPrefix(const Payload& src, const std::string& prefix) {
  Payload out;
  const std::string needle = prefix + "/";
  for (const auto& [key, value] : src.scalars()) {
    if (key.rfind(needle, 0) != 0) continue;
    const std::string inner = key.substr(needle.size());
    if (std::holds_alternative<int64_t>(value)) {
      out.SetInt(inner, std::get<int64_t>(value));
    } else if (std::holds_alternative<double>(value)) {
      out.SetDouble(inner, std::get<double>(value));
    } else {
      out.SetString(inner, std::get<std::string>(value));
    }
  }
  for (const auto& [key, tensor] : src.tensors()) {
    if (key.rfind(needle, 0) != 0) continue;
    out.SetTensor(key.substr(needle.size()), tensor);
  }
  return out;
}

std::vector<uint8_t> SerializeCheckpoint(const Checkpoint& checkpoint) {
  Payload payload;
  payload.SetInt("round", checkpoint.round);
  payload.SetDouble("virtual_time", checkpoint.virtual_time);
  payload.SetDouble("best_accuracy", checkpoint.best_accuracy);
  payload.SetString("format", kFormatV2);
  payload.SetInt("num_params",
                 static_cast<int64_t>(checkpoint.global_state.size()));
  payload.SetStateDict(kStateKey, checkpoint.global_state);
  MergePayloadWithPrefix(&payload, kCourseKey, checkpoint.course);
  return EncodePayload(payload);
}

Result<Checkpoint> DeserializeCheckpoint(const std::vector<uint8_t>& bytes) {
  auto payload = DecodePayload(bytes);
  if (!payload.ok()) return payload.status();
  const std::string format = payload->GetString("format");
  if (format != kFormatV1 && format != kFormatV2) {
    return Status::InvalidArgument("not a fedscope checkpoint");
  }
  Checkpoint checkpoint;
  checkpoint.round = static_cast<int>(payload->GetInt("round"));
  checkpoint.virtual_time = payload->GetDouble("virtual_time");
  checkpoint.best_accuracy = payload->GetDouble("best_accuracy");
  checkpoint.global_state = payload->GetStateDict(kStateKey);
  if (format == kFormatV1) {
    // v1 predates the explicit count: an empty dict is indistinguishable
    // from a stripped file, so it stays an error.
    if (checkpoint.global_state.empty()) {
      return Status::DataLoss("checkpoint carries no parameters");
    }
    return checkpoint;
  }
  const int64_t num_params = payload->GetInt("num_params", -1);
  if (num_params !=
      static_cast<int64_t>(checkpoint.global_state.size())) {
    return Status::DataLoss("checkpoint parameter count mismatch");
  }
  checkpoint.course = ExtractPayloadPrefix(*payload, kCourseKey);
  return checkpoint;
}

Status RestoreModel(const Checkpoint& checkpoint, Model* model) {
  return model->LoadStateDict(checkpoint.global_state, /*strict=*/true);
}

std::vector<uint8_t> EncodeCheckpointFile(const Checkpoint& checkpoint) {
  const std::vector<uint8_t> payload = SerializeCheckpoint(checkpoint);
  std::vector<uint8_t> out;
  out.reserve(kFileHeaderSize + payload.size());
  out.insert(out.end(), kFileMagic.begin(), kFileMagic.end());
  AppendWord<uint32_t>(&out, kFileVersion);
  AppendWord<uint64_t>(&out, payload.size());
  AppendWord<uint32_t>(&out, Crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<Checkpoint> DecodeCheckpointFile(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kFileHeaderSize) {
    return Status::DataLoss("truncated checkpoint file header");
  }
  if (!std::equal(kFileMagic.begin(), kFileMagic.end(), bytes.begin())) {
    return Status::InvalidArgument("not a fedscope checkpoint file");
  }
  const uint32_t version = ReadWord<uint32_t>(bytes.data() + 4);
  if (version != kFileVersion) {
    return Status::InvalidArgument("unsupported checkpoint file version " +
                                   std::to_string(version));
  }
  const uint64_t payload_size = ReadWord<uint64_t>(bytes.data() + 8);
  if (bytes.size() - kFileHeaderSize < payload_size) {
    return Status::DataLoss("truncated checkpoint file payload");
  }
  if (bytes.size() - kFileHeaderSize > payload_size) {
    return Status::InvalidArgument("trailing bytes after checkpoint payload");
  }
  const uint32_t expected_crc = ReadWord<uint32_t>(bytes.data() + 16);
  const uint8_t* payload = bytes.data() + kFileHeaderSize;
  if (Crc32(payload, payload_size) != expected_crc) {
    return Status::DataLoss("checkpoint file checksum mismatch");
  }
  return DeserializeCheckpoint(
      std::vector<uint8_t>(payload, payload + payload_size));
}

Result<int64_t> WriteCheckpointFileAtomic(const std::string& path,
                                          const Checkpoint& checkpoint) {
  const std::vector<uint8_t> bytes = EncodeCheckpointFile(checkpoint);
  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + tmp_path + ": " +
                               std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::Internal("cannot write " + tmp_path + ": " + err);
    }
    off += static_cast<size_t>(n);
  }
  // fsync before rename: the rename must never become visible while the
  // file's data blocks are still in flight (else a crash leaves a named
  // but torn snapshot).
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::Internal("cannot sync " + tmp_path);
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp_path.c_str());
    return Status::Internal("cannot rename " + tmp_path + ": " + err);
  }
  // fsync the directory so the rename itself survives a power cut.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dir_fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return static_cast<int64_t>(bytes.size());
}

Result<Checkpoint> ReadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return DecodeCheckpointFile(bytes);
}

namespace {

/// True iff `filename` is "<worker_prefix>snapshot-<round>.ckpt". The
/// prefix must match exactly: an unprefixed reader ("") requires the name
/// to START with "snapshot-", so it never picks up "s0-snapshot-...".
bool MatchesSnapshotName(const std::string& filename,
                         const std::string& worker_prefix) {
  const std::string want = worker_prefix + kSnapshotPrefix;
  return filename.rfind(want, 0) == 0 &&
         filename.size() > want.size() + std::strlen(kSnapshotExtension) &&
         filename.compare(filename.size() - std::strlen(kSnapshotExtension),
                          std::strlen(kSnapshotExtension),
                          kSnapshotExtension) == 0;
}

}  // namespace

Result<int64_t> SnapshotWriter::Write(const Checkpoint& checkpoint) {
  namespace fs = std::filesystem;
  FS_CHECK(enabled()) << "SnapshotWriter::Write with snapshots disabled";
  std::error_code ec;
  fs::create_directories(policy_.directory, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot directory " +
                               policy_.directory + ": " + ec.message());
  }
  char name[64];
  std::snprintf(name, sizeof(name), "%s%s%06d%s",
                policy_.worker_prefix.c_str(), kSnapshotPrefix,
                checkpoint.round, kSnapshotExtension);
  const std::string path =
      (fs::path(policy_.directory) / name).string();
  auto written = WriteCheckpointFileAtomic(path, checkpoint);
  if (!written.ok()) return written.status();
  ++snapshots_written_;
  bytes_written_ += written.value();
  if (policy_.keep_last > 0) {
    std::vector<fs::path> snapshots;
    for (const auto& entry : fs::directory_iterator(policy_.directory)) {
      const fs::path& p = entry.path();
      if (MatchesSnapshotName(p.filename().string(), policy_.worker_prefix)) {
        snapshots.push_back(p);
      }
    }
    // Zero-padded round numbers make lexicographic order round order.
    std::sort(snapshots.begin(), snapshots.end());
    while (snapshots.size() > static_cast<size_t>(policy_.keep_last)) {
      fs::remove(snapshots.front(), ec);
      snapshots.erase(snapshots.begin());
    }
  }
  return written;
}

Result<Checkpoint> LoadLatestSnapshot(const std::string& directory,
                                      const std::string& worker_prefix) {
  namespace fs = std::filesystem;
  std::vector<fs::path> snapshots;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const fs::path& p = entry.path();
    if (MatchesSnapshotName(p.filename().string(), worker_prefix)) {
      snapshots.push_back(p);
    }
  }
  if (ec) {
    return Status::NotFound("cannot list snapshot directory " + directory +
                            ": " + ec.message());
  }
  std::sort(snapshots.rbegin(), snapshots.rend());
  for (const auto& path : snapshots) {
    auto checkpoint = ReadCheckpointFile(path.string());
    if (checkpoint.ok()) return checkpoint;
    FS_LOG(Warning) << "skipping invalid snapshot " << path.string() << ": "
                    << checkpoint.status().ToString();
  }
  return Status::NotFound("no valid snapshot in " + directory);
}

}  // namespace fedscope
