#include "fedscope/core/checkpoint.h"

#include "fedscope/comm/codec.h"
#include "fedscope/comm/message.h"

namespace fedscope {
namespace {

constexpr char kStateKey[] = "global";

}  // namespace

std::vector<uint8_t> SerializeCheckpoint(const Checkpoint& checkpoint) {
  Payload payload;
  payload.SetInt("round", checkpoint.round);
  payload.SetDouble("virtual_time", checkpoint.virtual_time);
  payload.SetDouble("best_accuracy", checkpoint.best_accuracy);
  payload.SetString("format", "fedscope-checkpoint-v1");
  payload.SetStateDict(kStateKey, checkpoint.global_state);
  return EncodePayload(payload);
}

Result<Checkpoint> DeserializeCheckpoint(const std::vector<uint8_t>& bytes) {
  auto payload = DecodePayload(bytes);
  if (!payload.ok()) return payload.status();
  if (payload->GetString("format") != "fedscope-checkpoint-v1") {
    return Status::InvalidArgument("not a fedscope checkpoint");
  }
  Checkpoint checkpoint;
  checkpoint.round = static_cast<int>(payload->GetInt("round"));
  checkpoint.virtual_time = payload->GetDouble("virtual_time");
  checkpoint.best_accuracy = payload->GetDouble("best_accuracy");
  checkpoint.global_state = payload->GetStateDict(kStateKey);
  if (checkpoint.global_state.empty()) {
    return Status::DataLoss("checkpoint carries no parameters");
  }
  return checkpoint;
}

Status RestoreModel(const Checkpoint& checkpoint, Model* model) {
  return model->LoadStateDict(checkpoint.global_state, /*strict=*/true);
}

}  // namespace fedscope
