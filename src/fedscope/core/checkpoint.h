#ifndef FEDSCOPE_CORE_CHECKPOINT_H_
#define FEDSCOPE_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/nn/model.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// A training-course snapshot (paper §4.3: "FederatedScope can export the
/// snapshot of a training course to a corresponding checkpoint, from which
/// another training course can restore") — the mechanism behind the
/// multi-fidelity HPO methods (SHA, Hyperband, PBT) and, since the crash
/// recovery work (DESIGN.md §10), behind server restarts.
///
/// Serialized through the same backend-independent wire format as
/// messages, so checkpoints written by one backend restore on another.
struct Checkpoint {
  int round = 0;
  double virtual_time = 0.0;
  double best_accuracy = 0.0;
  StateDict global_state;
  /// Full course state beyond the model: rng streams, sampler cursor,
  /// aggregator accumulators, pending cohort, stats, transport epoch.
  /// Empty for v1 checkpoints and for plain HPO model checkpoints; the
  /// exact key schema is owned by Server::ExportSnapshot.
  Payload course;
};

/// v2 adds the course section and an explicit parameter count (so empty
/// state dicts round-trip); v1 files still deserialize, with an empty
/// course section.
std::vector<uint8_t> SerializeCheckpoint(const Checkpoint& checkpoint);
Result<Checkpoint> DeserializeCheckpoint(const std::vector<uint8_t>& bytes);

/// Applies a checkpoint's parameters to a model (architecture must match).
Status RestoreModel(const Checkpoint& checkpoint, Model* model);

// -- payload packing helpers ------------------------------------------------
// Byte-exact packing of numeric vectors into binary-safe string scalars
// (8-byte words, native layout like the wire codec). Doubles round-trip
// bit-identically, which the codec's float32 tensors could not guarantee.

void SetPackedU64s(Payload* p, const std::string& key,
                   const std::vector<uint64_t>& v);
std::vector<uint64_t> GetPackedU64s(const Payload& p, const std::string& key);
void SetPackedInt64s(Payload* p, const std::string& key,
                     const std::vector<int64_t>& v);
std::vector<int64_t> GetPackedInt64s(const Payload& p, const std::string& key);
void SetPackedDoubles(Payload* p, const std::string& key,
                      const std::vector<double>& v);
std::vector<double> GetPackedDoubles(const Payload& p, const std::string& key);

/// Copies every entry of `src` into `dst` under "<prefix>/", preserving
/// scalar types (int64 vs double matters for bit-exact restore).
void MergePayloadWithPrefix(Payload* dst, const std::string& prefix,
                            const Payload& src);
/// Recovers the sub-payload stored under "<prefix>/" by
/// MergePayloadWithPrefix.
Payload ExtractPayloadPrefix(const Payload& src, const std::string& prefix);

// -- durable snapshot files -------------------------------------------------

/// Container framing for a checkpoint on disk: 20-byte header
/// (magic "FSNP", u32 container version, u64 payload size, u32 CRC-32 of
/// the payload) followed by the wire-encoded checkpoint payload. The CRC
/// turns torn or bit-flipped files into a Status instead of garbage state.
std::vector<uint8_t> EncodeCheckpointFile(const Checkpoint& checkpoint);
/// Strict parse: rejects short headers, bad magic, unknown versions,
/// size mismatches, trailing bytes, and checksum mismatches.
Result<Checkpoint> DecodeCheckpointFile(const std::vector<uint8_t>& bytes);

/// Crash-consistent write: encode to "<path>.tmp", fsync the file and its
/// directory, then rename over `path` — a reader never observes a partial
/// snapshot, and a crash mid-write leaves the previous snapshot intact.
/// Returns the byte size written.
Result<int64_t> WriteCheckpointFileAtomic(const std::string& path,
                                          const Checkpoint& checkpoint);
Result<Checkpoint> ReadCheckpointFile(const std::string& path);

/// When/where the server persists course snapshots.
struct SnapshotPolicy {
  /// Snapshot directory; empty disables snapshotting entirely.
  std::string directory;
  /// Snapshot after every Nth aggregated round (1 = on every aggregate,
  /// 0 disables).
  int every_n_rounds = 1;
  /// Retain only the newest N snapshot files (0 = keep all). Two is the
  /// safe minimum: the newest may be mid-rename when the crash hits.
  int keep_last = 2;
  /// Worker-id filename prefix ("" = legacy unprefixed names). Multiple
  /// workers may share one snapshot directory (a shard's primary and its
  /// standbys must); the prefix keeps their files disjoint: a writer with
  /// prefix "s0-" names files "s0-snapshot-<round>.ckpt" and prunes only
  /// its own, and LoadLatestSnapshot(dir, "s0-") never returns another
  /// worker's state. Unprefixed readers never match prefixed files.
  std::string worker_prefix;
};

/// Applies a SnapshotPolicy: names files "snapshot-<round>.ckpt" inside
/// policy.directory (created on first write), writes atomically, prunes
/// old files, and counts writes/bytes for the obs satellite counters.
class SnapshotWriter {
 public:
  SnapshotWriter() = default;
  explicit SnapshotWriter(SnapshotPolicy policy) : policy_(std::move(policy)) {}

  bool enabled() const {
    return !policy_.directory.empty() && policy_.every_n_rounds > 0;
  }
  /// True when the policy calls for a snapshot after aggregation `round`.
  bool ShouldSnapshot(int round) const {
    return enabled() && round > 0 && round % policy_.every_n_rounds == 0;
  }
  /// Writes `checkpoint` and prunes; returns the bytes written.
  Result<int64_t> Write(const Checkpoint& checkpoint);

  const SnapshotPolicy& policy() const { return policy_; }
  int64_t snapshots_written() const { return snapshots_written_; }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  SnapshotPolicy policy_;
  int64_t snapshots_written_ = 0;
  int64_t bytes_written_ = 0;
};

/// Loads the newest valid snapshot in `directory` whose filename is
/// "<worker_prefix>snapshot-<round>.ckpt", skipping (with a logged
/// warning) files that fail the container checks — a torn newest file
/// falls back to the previous one. Files carrying a different worker
/// prefix are never considered, so a standby restoring from a shared
/// directory cannot pick up another shard's state. NotFound when none is
/// valid.
Result<Checkpoint> LoadLatestSnapshot(const std::string& directory,
                                      const std::string& worker_prefix = "");

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_CHECKPOINT_H_
