#ifndef FEDSCOPE_CORE_CHECKPOINT_H_
#define FEDSCOPE_CORE_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "fedscope/nn/model.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// A training-course snapshot (paper §4.3: "FederatedScope can export the
/// snapshot of a training course to a corresponding checkpoint, from which
/// another training course can restore") — the mechanism behind the
/// multi-fidelity HPO methods (SHA, Hyperband, PBT).
///
/// Serialized through the same backend-independent wire format as
/// messages, so checkpoints written by one backend restore on another.
struct Checkpoint {
  int round = 0;
  double virtual_time = 0.0;
  double best_accuracy = 0.0;
  StateDict global_state;
};

std::vector<uint8_t> SerializeCheckpoint(const Checkpoint& checkpoint);
Result<Checkpoint> DeserializeCheckpoint(const std::vector<uint8_t>& bytes);

/// Applies a checkpoint's parameters to a model (architecture must match).
Status RestoreModel(const Checkpoint& checkpoint, Model* model);

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_CHECKPOINT_H_
