#ifndef FEDSCOPE_CORE_TOPOLOGY_H_
#define FEDSCOPE_CORE_TOPOLOGY_H_

#include <string>

#include "fedscope/util/status.h"

namespace fedscope {

/// Aggregation topology of an FL course. The default (zero shards) is the
/// paper's flat single-server topology and leaves every code path
/// bit-identical to a build without this header. With `num_shards > 0`,
/// clients are partitioned into shards, each served by an intermediate
/// EdgeAggregator worker that pre-aggregates the shard's updates and
/// forwards one weighted partial update to the root server.
struct Topology {
  /// Number of client shards; 0 = flat (no edge aggregators).
  int num_shards = 0;
  /// How client ids map to shards: "round_robin" (client id modulo shard
  /// count) or "contiguous" (equal-width id ranges).
  std::string assignment = "round_robin";
  /// Hot standbys per shard (0 = no failover). Standby slot s presumes the
  /// shard dead after `failure_timeout * s` seconds of replication silence
  /// (staggered so lower slots always promote first).
  int standbys_per_shard = 0;
  /// Standby watchdog base timeout in virtual seconds (standalone runner).
  /// Must be > 0 when standbys_per_shard > 0 and the course can fail over.
  double failure_timeout = 30.0;

  bool hierarchical() const { return num_shards > 0; }
};

/// Worker ids of edge aggregators live far above any client id so the two
/// spaces never collide (clients are 1..N, the root server is 0).
inline constexpr int kAggregatorIdBase = 100000;
/// Slots per shard: slot 0 is the initial primary, 1.. are standbys.
inline constexpr int kAggregatorSlotsPerShard = 100;

/// Worker id of the aggregator serving `shard` in `slot`.
inline int AggregatorId(int shard, int slot) {
  return kAggregatorIdBase + shard * kAggregatorSlotsPerShard + slot;
}
inline bool IsAggregatorId(int id) { return id >= kAggregatorIdBase; }
inline int AggregatorShard(int id) {
  return (id - kAggregatorIdBase) / kAggregatorSlotsPerShard;
}
inline int AggregatorSlot(int id) {
  return (id - kAggregatorIdBase) % kAggregatorSlotsPerShard;
}

/// Shard of `client_id` (1-based) under `topology`. `num_clients` is the
/// course's total client count (used by the "contiguous" policy).
inline int ShardOfClient(const Topology& topology, int client_id,
                         int num_clients) {
  if (topology.num_shards <= 1) return 0;
  const int index = client_id - 1;  // client ids are 1-based
  if (topology.assignment == "contiguous") {
    const int width =
        (num_clients + topology.num_shards - 1) / topology.num_shards;
    const int shard = index / (width > 0 ? width : 1);
    return shard < topology.num_shards ? shard : topology.num_shards - 1;
  }
  return index % topology.num_shards;  // round_robin (default)
}

/// Error iff the topology is internally inconsistent.
inline Status ValidateTopology(const Topology& topology) {
  if (topology.num_shards < 0) {
    return Status::InvalidArgument("num_shards must be >= 0");
  }
  if (topology.assignment != "round_robin" &&
      topology.assignment != "contiguous") {
    return Status::InvalidArgument("unknown shard assignment policy: " +
                                   topology.assignment);
  }
  if (topology.standbys_per_shard < 0 ||
      topology.standbys_per_shard >= kAggregatorSlotsPerShard) {
    return Status::InvalidArgument("standbys_per_shard out of range");
  }
  if (topology.standbys_per_shard > 0 && topology.failure_timeout <= 0.0) {
    return Status::InvalidArgument(
        "standbys need a positive failure_timeout");
  }
  return Status::Ok();
}

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_TOPOLOGY_H_
