#ifndef FEDSCOPE_CORE_CLIENT_H_
#define FEDSCOPE_CORE_CLIENT_H_

#include <functional>
#include <memory>

#include "fedscope/core/trainer.h"
#include "fedscope/core/worker.h"
#include "fedscope/data/dataset.h"
#include "fedscope/nn/model.h"
#include "fedscope/privacy/dp.h"
#include "fedscope/sim/device_profile.h"
#include "fedscope/sim/response_model.h"

namespace fedscope {

/// Per-client configuration. Each client may differ in every field
/// (client-specific training configuration is a first-class feature,
/// paper §3.4.1); the FedRunner applies a user hook to customize clients.
struct ClientOptions {
  TrainConfig train;
  DeviceProfile device;
  /// Lognormal sigma of run-to-run latency jitter.
  double jitter_sigma = 0.2;
  /// Privacy behaviour plug-in (clip + noise before sharing, §4.1).
  DpOptions dp;
  /// Which parameters this client exchanges with the server. FedBN passes
  /// ExcludeSubstrings({".bn."}); multi-goal FL passes
  /// IncludePrefixes({"body."}).
  NameFilter share_filter;
  /// If > 0, raise "performance_drop" when loading the received global
  /// model reduces local validation accuracy by more than this threshold.
  double perf_drop_threshold = 0.0;
  /// With perf_drop_threshold set: when the event fires, roll back to the
  /// pre-load parameters for this round's training — the paper's "each
  /// participant can independently choose the most suitable snapshot of
  /// the global model" (§3.4.1). Off by default (count-and-log only).
  bool reject_harmful_global = false;
  /// If > 0 (bytes/sec), raise "low_bandwidth" when this client's uplink
  /// or downlink bandwidth is below the threshold; the default handler
  /// declines every other training request to halve the communication
  /// frequency (paper §3.2's "low_bandwidth" behaviour).
  double low_bandwidth_threshold = 0.0;
  /// Update compression before sharing: "none" | "quant8" | "topk"
  /// (message-transform operator plug-in; the server decompresses).
  std::string compression = "none";
  /// Kept coordinate fraction for "topk".
  double compression_keep_frac = 0.1;
  /// Seed of this client's private RNG stream.
  uint64_t seed = 0;

  ClientOptions() : share_filter(AcceptAll()) {}
};

/// An FL client: owns its private data, local model and Trainer, and
/// describes its behaviour through <event, handler> pairs. The default
/// handlers implement the FedAvg client of Example 3.2:
///   model_para  -> update local model, train locally, return the update
///   evaluate    -> evaluate the deployment model on local test data
///   finish      -> stop participating
/// Users customize by overwriting handlers or swapping the Trainer.
class Client : public BaseWorker {
 public:
  Client(int id, ClientOptions options, Model model, SplitDataset data,
         std::unique_ptr<BaseTrainer> trainer, CommChannel* channel);

  /// Announces this client to the server (sends join_in with an estimate
  /// of its responsiveness derived from device info).
  void JoinIn();

  /// Captures the complete mutable client state — rng stream position,
  /// virtual clock, behaviour counters, model and trainer state — so a
  /// reclaimed virtual client can later be re-instantiated bit-identically
  /// (DESIGN.md §13). Construction inputs (options, data, handlers) are
  /// re-derived deterministically by the ClientCache and are not written.
  void ExportResume(Payload* p);
  /// Restores state captured by ExportResume onto a freshly constructed
  /// client. Missing keys keep their fresh-construction values, so a
  /// minimal payload (e.g. only `finished`) is valid.
  void RestoreResume(const Payload& p);

  Model* model() { return &model_; }
  BaseTrainer* trainer() { return trainer_.get(); }
  const SplitDataset& data() const { return data_; }
  ClientOptions& options() { return options_; }

  /// Evaluates the deployment model (personalized, if the trainer
  /// personalizes) on the local test split.
  EvalResult EvaluateLocalTest();
  /// Same on the local validation split.
  EvalResult EvaluateLocalVal();

  bool finished() const { return finished_; }
  int rounds_trained() const { return rounds_trained_; }
  int perf_drop_count() const { return perf_drop_count_; }
  int declined_count() const { return declined_count_; }
  /// Highest shard session epoch seen on a broadcast (hierarchical
  /// topologies; 0 in flat courses) and the broadcasts rejected for
  /// carrying an older epoch (a superseded aggregator incarnation).
  int64_t shard_epoch() const { return shard_epoch_; }
  int64_t stale_epoch_rejected() const { return stale_epoch_rejected_; }

  // -- attack-simulation hooks (participant plug-in, §4.2) ------------------

  /// Applies `poisoner` to the local training split once (data poisoning:
  /// BadNets triggers, label flips, edge cases).
  void PoisonTrainData(const std::function<void(Dataset*)>& poisoner);

  /// Installs a hook that may arbitrarily rewrite the outgoing update
  /// (model poisoning: Neurotoxin-style masked updates, scaling attacks).
  void set_update_poisoner(std::function<void(StateDict*)> poisoner) {
    update_poisoner_ = std::move(poisoner);
  }

 private:
  void RegisterDefaultHandlers();
  void OnModelPara(const Message& msg);
  void OnEvaluate(const Message& msg);
  void OnFinish(const Message& msg);

  ClientOptions options_;
  Model model_;
  SplitDataset data_;
  std::unique_ptr<BaseTrainer> trainer_;
  Rng rng_;
  ResponseModel response_model_;
  std::function<void(StateDict*)> update_poisoner_;
  bool finished_ = false;
  int rounds_trained_ = 0;
  int perf_drop_count_ = 0;
  int declined_count_ = 0;
  int low_bandwidth_requests_ = 0;
  int rejected_globals_ = 0;
  int64_t shard_epoch_ = 0;
  int64_t stale_epoch_rejected_ = 0;
  double last_val_accuracy_ = -1.0;
  /// Pre-load snapshot valid while a performance_drop handler may want to
  /// roll back (set around UpdateModel in OnModelPara).
  StateDict pre_load_snapshot_;

 public:
  int rejected_globals() const { return rejected_globals_; }
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_CLIENT_H_
