#include "fedscope/core/worker.h"

#include "fedscope/util/logging.h"

namespace fedscope {

void BaseWorker::HandleMessage(const Message& msg) {
  current_time_ = std::max(current_time_, msg.timestamp);
  Status status = registry_.Dispatch(msg.msg_type, msg);
  if (!status.ok()) {
    FS_LOG(Debug) << "worker " << id_ << " has no handler for message type '"
                  << msg.msg_type << "'; dropped";
  }
}

void BaseWorker::RaiseEvent(const std::string& event, const Message& context) {
  Status status = registry_.Dispatch(event, context);
  if (!status.ok()) {
    FS_LOG(Debug) << "worker " << id_ << " raised event '" << event
                  << "' with no handler";
  }
}

void BaseWorker::Send(Message msg) {
  msg.sender = id_;
  if (msg.timestamp < current_time_) msg.timestamp = current_time_;
  FS_CHECK(channel_ != nullptr);
  channel_->Send(msg);
}

}  // namespace fedscope
