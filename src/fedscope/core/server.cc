#include "fedscope/core/server.h"

#include <algorithm>

#include "fedscope/comm/compression.h"
#include "fedscope/core/events.h"
#include "fedscope/obs/obs_context.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

constexpr char kModelKey[] = "model";
constexpr char kDeltaKey[] = "delta";

}  // namespace

Server::Server(ServerOptions options, Model global_model,
               std::unique_ptr<Aggregator> aggregator, CommChannel* channel)
    : BaseWorker(kServerId, channel),
      options_(std::move(options)),
      global_model_(std::move(global_model)),
      aggregator_(std::move(aggregator)),
      rng_(options_.seed != 0 ? options_.seed : 0x5E17E5) {
  FS_CHECK(aggregator_ != nullptr);
  if (options_.guard.enabled) {
    guard_ = std::make_unique<UpdateGuard>(options_.guard);
  }
  FS_CHECK_GT(options_.concurrency, 0);
  if (options_.topology.hierarchical()) {
    FS_CHECK_OK(ValidateTopology(options_.topology));
    // Partial updates cover whole cohort slices at once, which only the
    // blocking synchronous trigger can account for; the async strategies,
    // receive deadlines, and per-update rebroadcasts reason about
    // individual client updates the root no longer sees.
    FS_CHECK(options_.strategy == Strategy::kSyncVanilla)
        << "hierarchical topologies require the sync_vanilla strategy";
    FS_CHECK(options_.broadcast == BroadcastManner::kAfterAggregating)
        << "hierarchical topologies require after-aggregating broadcasts";
    FS_CHECK_LE(options_.receive_deadline, 0.0)
        << "hierarchical topologies do not support receive deadlines";
    FS_CHECK_GT(options_.expected_clients, 0)
        << "hierarchical topologies need expected_clients to assign shards";
    shard_epochs_.assign(options_.topology.num_shards, 0);
    shard_active_slot_.assign(options_.topology.num_shards, 0);
  }
  RegisterDefaultHandlers();
}

void Server::RegisterDefaultHandlers() {
  registry_.Register(
      events::kJoinIn, [this](const Message& msg) { OnJoinIn(msg); },
      /*emits=*/{events::kAssignId});
  registry_.Register(
      events::kModelUpdate,
      [this](const Message& msg) { OnModelUpdate(msg); },
      /*emits=*/{events::kModelPara});
  registry_.Register(events::kTimer,
                     [this](const Message& msg) { OnTimer(msg); });
  registry_.Register(events::kMetrics,
                     [this](const Message& msg) { OnMetrics(msg); });
  registry_.Register(
      events::kClientFailure,
      [this](const Message& msg) { OnClientFailure(msg); },
      /*emits=*/{events::kModelPara});
  if (options_.topology.hierarchical()) {
    registry_.Register(
        events::kPartialUpdate,
        [this](const Message& msg) { OnPartialUpdate(msg); },
        /*emits=*/{events::kModelPara});
    registry_.Register(
        events::kStandbyPromoted,
        [this](const Message& msg) { OnStandbyPromoted(msg); },
        /*emits=*/{events::kModelPara});
  }

  // Condition events of §3.3: which one fires is decided by the checks in
  // OnModelUpdate / OnTimer; what it does is a swappable handler.
  registry_.Register(
      events::kAllJoinedIn,
      [this](const Message& msg) { StartTraining(msg); },
      /*emits=*/{events::kModelPara});
  registry_.Register(
      events::kAllReceived,
      [this](const Message& msg) {
        PerformAggregation(events::kAllReceived, msg);
      },
      /*emits=*/{events::kModelPara});
  registry_.Register(
      events::kGoalAchieved,
      [this](const Message& msg) {
        PerformAggregation(events::kGoalAchieved, msg);
      },
      /*emits=*/{events::kModelPara});
  registry_.Register(
      events::kTimeUp,
      [this](const Message& msg) { PerformAggregation(events::kTimeUp, msg); },
      /*emits=*/{events::kModelPara});
  registry_.Register(
      events::kReceiveDeadline,
      [this](const Message& msg) {
        PerformAggregation(events::kReceiveDeadline, msg);
      },
      /*emits=*/{events::kModelPara});
  std::vector<std::string> finish_emits = {events::kFinish};
  if (options_.collect_client_metrics) {
    finish_emits.push_back(events::kEvaluate);
  }
  registry_.Register(
      events::kTargetReached,
      [this](const Message& msg) { FinishCourse(msg); }, finish_emits);
  registry_.Register(
      events::kEarlyStop, [this](const Message& msg) { FinishCourse(msg); },
      finish_emits);
}

void Server::OnJoinIn(const Message& msg) {
  if (started_) {
    if (clients_.count(msg.sender) > 0) {
      // Re-join after a server restart (DESIGN.md §10): the sender is
      // already a member. Re-ack its id so its transport adopts the new
      // session epoch; if the snapshot has it mid-training, restart its
      // round — any update it produced since the snapshot died with the
      // old process or is rejected as stale-epoch.
      FS_LOG(Info) << "client " << msg.sender << " re-joined at round "
                   << round_;
      Message ack;
      ack.receiver = msg.sender;
      ack.msg_type = events::kAssignId;
      ack.timestamp = msg.timestamp;
      ack.payload.SetInt("assigned_id", msg.sender);
      Send(std::move(ack));
      if (busy_.count(msg.sender) > 0) {
        busy_.erase(msg.sender);
        BroadcastModel({msg.sender}, msg.timestamp);
      }
      return;
    }
    FS_LOG(Warning) << "client " << msg.sender << " joined after start";
    return;
  }
  clients_.insert(msg.sender);
  max_joined_ = std::max(max_joined_, msg.sender);
  removed_.erase(msg.sender);
  const int idx = msg.sender - 1;
  if (idx >= 0) {
    if (idx >= static_cast<int>(resp_scores_.size())) {
      resp_scores_.resize(idx + 1, 1.0);
    }
    resp_scores_[idx] = msg.payload.GetDouble("resp_score", 1.0);
  }

  Message ack;
  ack.receiver = msg.sender;
  ack.msg_type = events::kAssignId;
  ack.timestamp = msg.timestamp;
  ack.payload.SetInt("assigned_id", msg.sender);
  Send(std::move(ack));

  if (options_.expected_clients > 0 &&
      static_cast<int>(clients_.size()) >= options_.expected_clients) {
    RaiseEvent(events::kAllJoinedIn, msg);
  }
}

void Server::StartTraining(const Message& context) {
  if (started_) return;
  started_ = true;
  sampler_ = MakeSampler(options_.sampler, resp_scores_, options_.num_groups);
  stats_.agg_count.assign(resp_scores_.size() + 1, 0);

  FS_LOG(Info) << "FL course started with " << clients_.size()
               << " clients; strategy handlers: "
               << registry_.RegisteredEvents().size();
  Replenish(context.timestamp);
  if (options_.strategy == Strategy::kAsyncTime || deadline_active()) {
    ScheduleTimer(context.timestamp);
  }
}

std::vector<int> Server::SampleIdle(int k) {
  // Dense membership: clients_ ∪ removed_ == [1, max_joined_] (disjoint by
  // construction, so equal sizes imply exact coverage). The idle set is
  // then the range minus busy minus removed, which the sampler can draw
  // from without materializing the population.
  const bool dense =
      max_joined_ > 0 &&
      (clients_.empty() || *clients_.begin() >= 1) &&
      clients_.size() + removed_.size() == static_cast<size_t>(max_joined_);
  if (dense) {
    std::vector<int> excluded;
    excluded.reserve(busy_.size() + removed_.size());
    auto busy_it = busy_.begin();
    auto removed_it = removed_.begin();
    while (busy_it != busy_.end() || removed_it != removed_.end()) {
      if (removed_it == removed_.end() ||
          (busy_it != busy_.end() && busy_it->first < *removed_it)) {
        excluded.push_back(busy_it->first);
        ++busy_it;
      } else {
        excluded.push_back(*removed_it);
        ++removed_it;
      }
    }
    return sampler_->SampleIds(CandidateView(max_joined_, std::move(excluded)),
                               k, &rng_);
  }
  std::vector<int> idle;
  idle.reserve(clients_.size());
  for (int id : clients_) {
    if (busy_.count(id) == 0) idle.push_back(id);
  }
  return sampler_->Sample(idle, k, &rng_);
}

void Server::BroadcastModel(const std::vector<int>& client_ids,
                            double timestamp) {
  if (options_.topology.hierarchical()) {
    BroadcastModelSharded(client_ids, timestamp);
    return;
  }
  const StateDict shared = global_model_.GetStateDict(options_.share_filter);
  for (int id : client_ids) {
    Message msg;
    msg.receiver = id;
    msg.msg_type = events::kModelPara;
    msg.state = round_;
    msg.timestamp = timestamp;
    msg.payload.SetStateDict(kModelKey, shared);
    if (config_provider_) {
      Config config = config_provider_(id, round_);
      for (const auto& key : config.Keys()) {
        msg.payload.SetDouble(key, config.GetDouble(key, 0.0));
      }
      msg.payload.SetInt("hpo.want_feedback", 1);
    }
    busy_[id] = round_;
    if (obs_ != nullptr && obs_->enabled()) {
      pending_downlink_bytes_ += msg.payload.ByteSize();
      ++pending_broadcasts_;
    }
    Send(std::move(msg));
  }
}

void Server::BroadcastModelSharded(const std::vector<int>& client_ids,
                                   double timestamp) {
  if (client_ids.empty()) return;
  FS_CHECK(config_provider_ == nullptr)
      << "hierarchical topologies do not support per-client HPO configs";
  std::map<int, std::vector<int64_t>> by_shard;
  for (int id : client_ids) {
    by_shard[ShardOfClient(options_.topology, id, options_.expected_clients)]
        .push_back(id);
    busy_[id] = round_;
  }
  const StateDict shared = global_model_.GetStateDict(options_.share_filter);
  const bool record_obs = obs_ != nullptr && obs_->enabled();
  for (auto& [shard, cohort] : by_shard) {
    Message msg;
    msg.receiver = ActiveAggregatorId(shard);
    msg.msg_type = events::kModelPara;
    msg.state = round_;
    msg.timestamp = timestamp;
    msg.payload.SetStateDict(kModelKey, shared);
    SetPackedInt64s(&msg.payload, "cohort", cohort);
    msg.payload.SetInt("shard_epoch", shard_epochs_[shard]);
    if (record_obs) {
      pending_downlink_bytes_ += msg.payload.ByteSize();
      pending_broadcasts_ += static_cast<int>(cohort.size());
    }
    Send(std::move(msg));
  }
}

void Server::OnPartialUpdate(const Message& msg) {
  if (finished_ || !started_) return;
  const int shard = static_cast<int>(msg.payload.GetInt("shard", -1));
  if (shard < 0 || shard >= options_.topology.num_shards) {
    FS_LOG(Warning) << "partial_update with unknown shard " << shard
                    << " from " << msg.sender;
    return;
  }
  const bool record_obs = obs_ != nullptr && obs_->enabled();
  const int64_t epoch = msg.payload.GetInt("shard_epoch", 0);
  if (epoch != shard_epochs_[shard]) {
    // A superseded incarnation of the shard's aggregator: its cohort was
    // re-broadcast through the promoted standby, so accepting this would
    // double-count those clients.
    ++stats_.stale_partials;
    if (record_obs) obs_->Count("fs_server_stale_partials_total");
    FS_LOG(Info) << "rejecting shard " << shard << " partial at epoch "
                 << epoch << " (current " << shard_epochs_[shard] << ")";
    return;
  }
  if (record_obs) {
    pending_uplink_bytes_ += msg.payload.ByteSize();
    ++pending_partials_;
    obs_->Count("fs_server_partial_updates_total");
  }
  std::vector<int> contributors;
  for (int64_t id : GetPackedInt64s(msg.payload, "contributors")) {
    contributors.push_back(static_cast<int>(id));
    busy_.erase(static_cast<int>(id));
  }
  const std::vector<int64_t> declined =
      GetPackedInt64s(msg.payload, "declined_ids");
  for (int64_t id : declined) {
    busy_.erase(static_cast<int>(id));
    ++stats_.declined;
    if (record_obs) {
      ++pending_declined_;
      obs_->Count("fs_server_declined_total");
    }
  }
  // Members whose updates the edge aggregator's guard rejected: they
  // covered their cohort slot (the shard saw their reply) but contributed
  // nothing; the root books the violation so quarantine is course-global.
  const std::vector<int64_t> rejected =
      GetPackedInt64s(msg.payload, "rejected_ids");
  for (int64_t id64 : rejected) {
    const int id = static_cast<int>(id64);
    busy_.erase(id);
    ++stats_.updates_rejected;
    if (record_obs) {
      ++pending_rejected_;
      obs_->Count("fs_server_updates_rejected_total", 1.0,
                  {{"reason", "edge"}});
    }
    if (guard_ != nullptr && guard_->RecordViolation(id)) {
      QuarantineClient(id);
    }
  }
  covered_this_round_ += static_cast<int>(contributors.size() +
                                          declined.size() + rejected.size());

  if (!contributors.empty()) {
    const int staleness = round_ - msg.state;
    if (staleness > options_.staleness_tolerance) {
      stats_.dropped_stale += static_cast<int64_t>(contributors.size());
      if (record_obs) {
        pending_dropped_ += static_cast<int64_t>(contributors.size());
        obs_->Count("fs_server_dropped_stale_total",
                    static_cast<double>(contributors.size()));
      }
    } else {
      ClientUpdate update;
      update.client_id = msg.sender;
      update.round_started = msg.state;
      update.staleness = staleness;
      update.num_samples = msg.payload.GetDouble("total_weight", 1.0);
      update.local_steps =
          static_cast<int>(msg.payload.GetInt("local_steps", 1));
      update.delta = msg.payload.GetStateDict(kDeltaKey);
      bool usable = true;
      if (guard_ != nullptr) {
        // A hostile shard (or an in-flight corruption of the partial) must
        // not poison the root. The sender is an aggregator, so violations
        // are not tracked against it — its members were booked at the edge.
        const StateDict signature =
            global_model_.GetStateDict(options_.share_filter);
        const GuardDecision decision = guard_->Inspect(
            msg.sender, signature, &update.delta, /*track_violations=*/false);
        if (decision.verdict == GuardVerdict::kClip) {
          ++stats_.updates_clipped;
          if (record_obs) obs_->Count("fs_server_updates_clipped_total");
        }
        if (decision.rejected()) {
          usable = false;
          ++stats_.updates_rejected;
          if (record_obs) {
            ++pending_rejected_;
            obs_->Count("fs_server_updates_rejected_total", 1.0,
                        {{"reason", GuardReasonLabel(decision.verdict)}});
          }
          FS_LOG(Warning) << "rejecting partial from aggregator "
                          << msg.sender << " ("
                          << GuardReasonLabel(decision.verdict)
                          << "): " << decision.detail;
        }
      }
      if (usable) {
        buffer_.push_back(std::move(update));
        buffer_contributors_.push_back(std::move(contributors));
      }
    }
  }

  if (covered_this_round_ >= sampled_this_round_) {
    RaiseEvent(events::kAllReceived, msg);
  }
}

void Server::OnStandbyPromoted(const Message& msg) {
  if (finished_) return;
  const int shard = static_cast<int>(msg.payload.GetInt("shard", -1));
  if (shard < 0 || shard >= options_.topology.num_shards) {
    FS_LOG(Warning) << "standby_promoted for unknown shard " << shard;
    return;
  }
  const int64_t claimed = msg.payload.GetInt("shard_epoch", 0);
  shard_epochs_[shard] = std::max(shard_epochs_[shard] + 1, claimed);
  shard_active_slot_[shard] = AggregatorSlot(msg.sender);
  ++stats_.shard_failovers;
  if (obs_ != nullptr && obs_->enabled()) {
    ++pending_failovers_;
    obs_->Count("fs_server_shard_failovers_total");
  }
  FS_LOG(Warning) << "shard " << shard << " failed over to aggregator "
                  << msg.sender << " (epoch " << shard_epochs_[shard] << ")";
  if (!started_) return;
  // Whatever the dead incarnation buffered or had in flight is lost:
  // re-broadcast the shard's in-flight cohort through the new aggregator
  // (stale-epoch rejection keeps any late survivor output out).
  std::vector<int> inflight;
  for (const auto& [id, round] : busy_) {
    if (ShardOfClient(options_.topology, id, options_.expected_clients) ==
        shard) {
      inflight.push_back(id);
    }
  }
  if (!inflight.empty()) BroadcastModelSharded(inflight, msg.timestamp);
}

void Server::Replenish(double timestamp) {
  int want = options_.concurrency;
  if (options_.strategy == Strategy::kSyncOverselect) {
    want = static_cast<int>(options_.concurrency *
                            (1.0 + options_.overselect_frac));
  }
  // Only workers whose eventual update can still be tolerated count
  // against the concurrency target; workers stuck on rounds older than
  // the staleness toleration will be dropped anyway (with toleration 0
  // this is exactly the fresh-cohort rule of over-selection).
  int in_flight = 0;
  for (const auto& [id, round] : busy_) {
    if (round_ - round <= options_.staleness_tolerance) ++in_flight;
  }
  const int missing = want - in_flight;
  if (missing <= 0) return;
  auto cohort = SampleIdle(missing);
  sampled_this_round_ = in_flight + static_cast<int>(cohort.size());
  BroadcastModel(cohort, timestamp);
}

void Server::ScheduleTimer(double now) {
  const double delay = options_.strategy == Strategy::kAsyncTime
                           ? options_.time_budget
                           : options_.receive_deadline;
  Message timer;
  timer.receiver = id_;
  timer.msg_type = events::kTimer;
  timer.state = round_;
  timer.timestamp = now + delay;
  Send(std::move(timer));
}

void Server::OnModelUpdate(const Message& msg) {
  if (finished_ || !started_) return;
  busy_.erase(msg.sender);
  const bool record_obs = obs_ != nullptr && obs_->enabled();
  if (record_obs) pending_uplink_bytes_ += msg.payload.ByteSize();

  if (msg.payload.GetInt("declined", 0) != 0) {
    // The client declined this round (low_bandwidth behaviour): free the
    // slot, shrink the cohort the synchronous trigger waits for, and keep
    // the concurrency up under after-receiving broadcasts.
    ++stats_.declined;
    if (record_obs) {
      ++pending_declined_;
      obs_->Count("fs_server_declined_total");
    }
    if (sampled_this_round_ > 0) --sampled_this_round_;
    switch (options_.strategy) {
      case Strategy::kSyncVanilla:
        if (static_cast<int>(buffer_.size()) >= sampled_this_round_) {
          RaiseEvent(events::kAllReceived, msg);
        }
        break;
      default:
        break;
    }
    if (!finished_ &&
        options_.broadcast == BroadcastManner::kAfterReceiving) {
      BroadcastModel(SampleIdle(1), msg.timestamp);
    }
    return;
  }

  const int staleness = round_ - msg.state;
  if (guard_ == nullptr && staleness > options_.staleness_tolerance) {
    // Outdated beyond toleration: dropped entirely (§3.3.1-i).
    ++stats_.dropped_stale;
    if (record_obs) {
      ++pending_dropped_;
      obs_->Count("fs_server_dropped_stale_total");
    }
  } else {
    ClientUpdate update;
    update.client_id = msg.sender;
    update.round_started = msg.state;
    update.staleness = staleness;
    update.num_samples =
        static_cast<double>(msg.payload.GetInt("num_samples", 1));
    update.local_steps =
        static_cast<int>(msg.payload.GetInt("local_steps", 1));
    // Transparent decompression of operator-transformed updates.
    const std::string codec = msg.payload.GetString("codec");
    if (codec == "quant8") {
      auto decoded = DequantizeStateDict(msg.payload);
      if (!decoded.ok()) {
        FS_LOG(Warning) << "dropping undecodable quant8 update from "
                        << msg.sender << ": "
                        << decoded.status().ToString();
        return;
      }
      update.delta = std::move(decoded.value());
    } else if (codec == "topk") {
      auto decoded = DesparsifyStateDict(msg.payload);
      if (!decoded.ok()) {
        FS_LOG(Warning) << "dropping undecodable topk update from "
                        << msg.sender << ": "
                        << decoded.status().ToString();
        return;
      }
      update.delta = std::move(decoded.value());
    } else {
      update.delta = msg.payload.GetStateDict(kDeltaKey);
    }
    if (guard_ != nullptr) {
      // Ingress validation precedes the staleness drop: malformed input is
      // malformed whatever round it claims, which also keeps the
      // delivered-poison accounting exact (fuzz oracle 14).
      const StateDict signature =
          global_model_.GetStateDict(options_.share_filter);
      const GuardDecision decision =
          guard_->Inspect(msg.sender, signature, &update.delta);
      if (decision.verdict == GuardVerdict::kClip) {
        ++stats_.updates_clipped;
        if (record_obs) obs_->Count("fs_server_updates_clipped_total");
      }
      if (decision.rejected()) {
        HandleRejectedUpdate(msg, decision);
        return;
      }
    }
    if (guard_ != nullptr && staleness > options_.staleness_tolerance) {
      // Guard-accepted but outdated beyond toleration: dropped exactly as
      // on the guard-off path (falls through to the trigger checks).
      ++stats_.dropped_stale;
      if (record_obs) {
        ++pending_dropped_;
        obs_->Count("fs_server_dropped_stale_total");
      }
    } else {
      buffer_.push_back(std::move(update));
    }
  }

  if (feedback_consumer_) {
    feedback_consumer_(msg.sender, msg.state, msg.payload);
  }

  // Condition checking (§3.2): has the aggregation trigger fired?
  switch (options_.strategy) {
    case Strategy::kSyncVanilla:
      if (static_cast<int>(buffer_.size()) >= sampled_this_round_) {
        RaiseEvent(events::kAllReceived, msg);
      }
      break;
    case Strategy::kSyncOverselect:
      if (static_cast<int>(buffer_.size()) >= options_.concurrency) {
        RaiseEvent(events::kGoalAchieved, msg);
      }
      break;
    case Strategy::kAsyncGoal:
      if (static_cast<int>(buffer_.size()) >= options_.aggregation_goal) {
        RaiseEvent(events::kGoalAchieved, msg);
      }
      break;
    case Strategy::kAsyncTime:
      break;  // aggregation is driven by the timer
  }

  // After-receiving broadcast (§3.3.1-iii): hand the up-to-date model to
  // one idle client as soon as feedback arrives, keeping concurrency
  // constant (FedBuff-style).
  if (!finished_ && options_.broadcast == BroadcastManner::kAfterReceiving) {
    BroadcastModel(SampleIdle(1), msg.timestamp);
  }
}

void Server::OnTimer(const Message& msg) {
  if (finished_ || !started_) return;
  if (msg.state != round_) return;  // a timer from a completed round
  if (deadline_active()) {
    HandleReceiveDeadline(msg);
    return;
  }
  if (options_.strategy != Strategy::kAsyncTime) return;  // stray timer
  if (static_cast<int>(buffer_.size()) >= options_.min_received) {
    RaiseEvent(events::kTimeUp, msg);
  } else {
    // Remedial measures (§3.3.2): extend the round, pull in more clients.
    FS_LOG(Debug) << "round " << round_
                  << " time budget expired with too little feedback; "
                     "extending round";
    if (CountExtensionAndCheckBackstop(events::kTimeUp, msg)) return;
    Replenish(msg.timestamp);
    ScheduleTimer(msg.timestamp);
  }
}

bool Server::CountExtensionAndCheckBackstop(const std::string& aggregate_event,
                                            const Message& msg) {
  ++stats_.round_extensions;
  ++extensions_this_round_;
  if (obs_ != nullptr && obs_->enabled()) {
    obs_->Count("fs_server_round_extensions_total");
  }
  if (extensions_this_round_ <= options_.max_round_extensions) return false;
  // Liveness backstop: a round that stays starved through this many
  // extensions will never complete normally (e.g. the whole fleet is
  // dead). Aggregate whatever arrived, or give the course up.
  if (!buffer_.empty()) {
    FS_LOG(Warning) << "round " << round_ << " starved after "
                    << options_.max_round_extensions
                    << " extensions; aggregating " << buffer_.size()
                    << " updates below min_received";
    RaiseEvent(aggregate_event, msg);
    return true;
  }
  if (aggregate_event == events::kTimeUp && stats_.updates_rejected > 0 &&
      restaffs_this_round_ < kMaxStarvationRestaffs) {
    // The course has rejected feedback, so the fleet is (or was) provably
    // alive: the silence here is typically phantom in-flight slots — a
    // rejection's replacement handed to a dead client, which Replenish
    // then counts against concurrency forever. Presume the outstanding
    // cohort dead and let the caller restaff it instead of giving the
    // course up. A course that never rejected keeps the legacy abort
    // bit-exactly (the guard-transparency oracle depends on that), and
    // the per-round budget keeps a genuinely dead fleet terminating.
    ++restaffs_this_round_;
    std::vector<int> outstanding;
    outstanding.reserve(busy_.size());
    for (const auto& [id, round] : busy_) outstanding.push_back(id);
    for (int id : outstanding) busy_.erase(id);
    stats_.dropouts += static_cast<int64_t>(outstanding.size());
    if (obs_ != nullptr && obs_->enabled()) {
      pending_dropouts_ += static_cast<int64_t>(outstanding.size());
      obs_->Count("fs_server_dropouts_total",
                  static_cast<double>(outstanding.size()));
    }
    extensions_this_round_ = 0;
    FS_LOG(Warning) << "round " << round_ << " starved after "
                    << options_.max_round_extensions
                    << " extensions with rejected feedback on record; "
                    << "presuming " << outstanding.size()
                    << " in-flight clients dead and restaffing the cohort ("
                    << restaffs_this_round_ << "/" << kMaxStarvationRestaffs
                    << ")";
    return false;
  }
  FS_LOG(Warning) << "round " << round_ << " starved after "
                  << options_.max_round_extensions
                  << " extensions with no feedback at all; aborting course";
  stats_.aborted = true;
  FinishCourse(msg);
  return true;
}

void Server::RestartStarvationBackstop() {
  // A rejection is proof the fleet is alive, and the replacement broadcast
  // just put fresh work in flight — the backstop must time the wait for
  // *that* work, not charge it against the poisoned cohort's extensions
  // (a whole-cohort attack late in a round would otherwise abort the
  // course while honest replacements are still training). Bounded:
  // quarantine exiles each offender after `quarantine_after` rejections,
  // so the reset cannot recur forever. With quarantine disabled there is
  // no such bound, so the backstop keeps its presumed-dead semantics.
  if (options_.guard.quarantine_after > 0) extensions_this_round_ = 0;
}

void Server::HandleReceiveDeadline(const Message& msg) {
  if (static_cast<int>(buffer_.size()) >= options_.min_received) {
    // Graceful degradation: aggregate the partial cohort instead of
    // blocking on the missing members.
    RaiseEvent(events::kReceiveDeadline, msg);
    return;
  }
  if (CountExtensionAndCheckBackstop(events::kReceiveDeadline, msg)) return;
  // Too little feedback to degrade onto: presume the outstanding cohort
  // dead and hand its slots to idle clients. Replacements are sampled
  // before the slots are freed, so a presumed-dead client cannot be drawn
  // as its own replacement.
  std::vector<int> outstanding;
  for (const auto& [id, round] : busy_) {
    if (round == round_) outstanding.push_back(id);
  }
  std::vector<int> replacements =
      SampleIdle(static_cast<int>(outstanding.size()));
  for (int id : outstanding) busy_.erase(id);
  stats_.dropouts += static_cast<int64_t>(outstanding.size());
  stats_.replacements += static_cast<int64_t>(replacements.size());
  if (obs_ != nullptr && obs_->enabled()) {
    pending_dropouts_ += static_cast<int64_t>(outstanding.size());
    pending_replacements_ += static_cast<int64_t>(replacements.size());
    obs_->Count("fs_server_dropouts_total",
                static_cast<double>(outstanding.size()));
    obs_->Count("fs_server_replacements_total",
                static_cast<double>(replacements.size()));
  }
  FS_LOG(Debug) << "round " << round_ << " receive deadline expired; "
                << outstanding.size() << " presumed dead, "
                << replacements.size() << " replacements";
  sampled_this_round_ =
      static_cast<int>(buffer_.size() + replacements.size());
  BroadcastModel(replacements, msg.timestamp);
  ScheduleTimer(msg.timestamp);
  if (replacements.empty() && busy_.empty() && !buffer_.empty()) {
    // Nobody is left in flight, so no further update can arrive; waiting
    // out more deadlines cannot improve on what is buffered.
    RaiseEvent(events::kReceiveDeadline, msg);
  }
}

void Server::OnClientFailure(const Message& msg) {
  if (finished_) return;
  const int id = msg.sender;
  FS_LOG(Warning) << "client " << id << " failed; removed from the course";
  if (clients_.erase(id) > 0 && id >= 1 && id <= max_joined_) {
    removed_.insert(id);
  }
  ++stats_.dropouts;
  const bool record_obs = obs_ != nullptr && obs_->enabled();
  if (record_obs) {
    ++pending_dropouts_;
    obs_->Count("fs_server_dropouts_total");
  }
  const auto it = busy_.find(id);
  if (it == busy_.end()) return;  // nothing was in flight on this client
  busy_.erase(it);
  if (!started_) return;
  // Hand the dead client's cohort slot to an idle client, keeping the
  // cohort (and the synchronous trigger) at its size; shrink the cohort
  // when nobody is available.
  std::vector<int> replacement = SampleIdle(1);
  if (!replacement.empty()) {
    ++stats_.replacements;
    if (record_obs) {
      ++pending_replacements_;
      obs_->Count("fs_server_replacements_total");
    }
    BroadcastModel(replacement, msg.timestamp);
    return;
  }
  if (sampled_this_round_ > 0) --sampled_this_round_;
  if (options_.strategy != Strategy::kSyncVanilla) return;
  if (options_.topology.hierarchical()) {
    if (covered_this_round_ >= sampled_this_round_ && !buffer_.empty()) {
      RaiseEvent(events::kAllReceived, msg);
    }
    return;
  }
  if (!buffer_.empty() &&
      static_cast<int>(buffer_.size()) >= sampled_this_round_) {
    RaiseEvent(events::kAllReceived, msg);
  }
}

void Server::HandleRejectedUpdate(const Message& msg,
                                  const GuardDecision& decision) {
  const bool record_obs = obs_ != nullptr && obs_->enabled();
  ++stats_.updates_rejected;
  if (record_obs) {
    ++pending_rejected_;
    obs_->Count("fs_server_updates_rejected_total", 1.0,
                {{"reason", GuardReasonLabel(decision.verdict)}});
  }
  FS_LOG(Warning) << "rejecting update from client " << msg.sender << " ("
                  << GuardReasonLabel(decision.verdict) << "): "
                  << decision.detail;
  if (decision.quarantine) QuarantineClient(msg.sender);

  if (options_.broadcast == BroadcastManner::kAfterReceiving) {
    // The rebroadcast below refills the pipeline; shrink the cohort the
    // synchronous trigger waits for, exactly like a declined round.
    if (sampled_this_round_ > 0) --sampled_this_round_;
    if (options_.strategy == Strategy::kSyncVanilla &&
        static_cast<int>(buffer_.size()) >= sampled_this_round_) {
      RaiseEvent(events::kAllReceived, msg);
    }
    if (!finished_) {
      std::vector<int> refill = SampleIdle(1);
      BroadcastModel(refill, msg.timestamp);
      if (!refill.empty()) RestartStarvationBackstop();
    }
    return;
  }
  // After-aggregating broadcasts: hand the freed slot to an idle client so
  // the cohort trigger stays whole. A persistent offender is re-drawable
  // until quarantine exiles it, which bounds the retries at the violation
  // bar; when nobody is idle the cohort shrinks like a declined round.
  std::vector<int> replacement = SampleIdle(1);
  if (!replacement.empty()) {
    ++stats_.replacements;
    if (record_obs) {
      ++pending_replacements_;
      obs_->Count("fs_server_replacements_total");
    }
    BroadcastModel(replacement, msg.timestamp);
    RestartStarvationBackstop();
    return;
  }
  if (sampled_this_round_ > 0) --sampled_this_round_;
  if (options_.strategy == Strategy::kSyncVanilla && !buffer_.empty() &&
      static_cast<int>(buffer_.size()) >= sampled_this_round_) {
    RaiseEvent(events::kAllReceived, msg);
  }
}

void Server::QuarantineClient(int id) {
  if (clients_.erase(id) > 0 && id >= 1 && id <= max_joined_) {
    removed_.insert(id);
  }
  busy_.erase(id);
  stats_.quarantined.push_back(id);
  if (obs_ != nullptr && obs_->enabled()) {
    ++pending_quarantined_;
    obs_->Count("fs_server_clients_quarantined_total");
  }
  FS_LOG(Warning) << "client " << id << " quarantined after "
                  << options_.guard.quarantine_after
                  << " guard violations; removed from the sampling pool";
}

void Server::PerformAggregation(const std::string& trigger,
                                const Message& context) {
  if (finished_ || buffer_.empty()) return;
  const bool record_obs = obs_ != nullptr && obs_->enabled();

  // Staleness is measured against the version at aggregation time; updates
  // that aged beyond the toleration while buffered are dropped now.
  const bool hierarchical = options_.topology.hierarchical();
  std::vector<ClientUpdate> usable;
  std::vector<std::vector<int>> usable_contribs;
  usable.reserve(buffer_.size());
  for (size_t i = 0; i < buffer_.size(); ++i) {
    ClientUpdate& update = buffer_[i];
    update.staleness = round_ - update.round_started;
    if (update.staleness > options_.staleness_tolerance) {
      const int64_t dropped =
          hierarchical
              ? static_cast<int64_t>(buffer_contributors_[i].size())
              : 1;
      stats_.dropped_stale += dropped;
      if (record_obs) {
        pending_dropped_ += dropped;
        obs_->Count("fs_server_dropped_stale_total",
                    static_cast<double>(dropped));
      }
      continue;
    }
    usable.push_back(std::move(update));
    if (hierarchical) {
      usable_contribs.push_back(std::move(buffer_contributors_[i]));
    }
  }
  buffer_.clear();
  buffer_contributors_.clear();
  covered_this_round_ = 0;
  if (usable.empty()) {
    // Everything buffered had gone stale: keep the round's timer chain
    // alive so a deadline/budget-driven course cannot silently stall.
    if (options_.strategy == Strategy::kAsyncTime || deadline_active()) {
      ScheduleTimer(context.timestamp);
    }
    return;
  }

  if (hierarchical) {
    // Per-client attribution flows through the contributor lists the
    // partials carried, so Figure-10-style stats match a flat course.
    for (size_t i = 0; i < usable.size(); ++i) {
      for (int id : usable_contribs[i]) {
        stats_.staleness_log.push_back(usable[i].staleness);
        if (id >= 1 && id < static_cast<int>(stats_.agg_count.size())) {
          ++stats_.agg_count[id];
        }
      }
    }
  } else {
    for (const auto& update : usable) {
      stats_.staleness_log.push_back(update.staleness);
      if (update.client_id >= 1 &&
          update.client_id < static_cast<int>(stats_.agg_count.size())) {
        ++stats_.agg_count[update.client_id];
      }
    }
  }

  const StateDict global_shared =
      global_model_.GetStateDict(options_.share_filter);
  Result<StateDict> next = aggregator_->Aggregate(global_shared, usable);
  if (!next.ok()) {
    // A hostile or degenerate cohort must extend the round, not kill the
    // course: keep the model, keep the timer chain alive, and let the
    // deadline machinery resample (the extension backstop still bounds it).
    FS_LOG(Warning) << "aggregation failed at round " << round_ << ": "
                    << next.status().ToString();
    if (record_obs) obs_->Count("fs_server_aggregation_failures_total");
    if (options_.strategy == Strategy::kAsyncTime || deadline_active()) {
      ScheduleTimer(context.timestamp);
    }
    return;
  }
  FS_CHECK_OK(global_model_.LoadStateDict(next.value()));

  ++round_;
  stats_.rounds = round_;
  extensions_this_round_ = 0;
  restaffs_this_round_ = 0;

  const size_t curve_size_before = stats_.curve.size();
  const bool stopped = EvaluateAndCheckStop(context);
  if (record_obs) {
    RecordRound(trigger, context, usable, usable_contribs,
                stats_.curve.size() > curve_size_before);
  }
  if (stopped) return;

  if (options_.broadcast == BroadcastManner::kAfterAggregating) {
    Replenish(context.timestamp);
  }
  if (options_.strategy == Strategy::kAsyncTime || deadline_active()) {
    ScheduleTimer(context.timestamp);
  }
}

void Server::RecordRound(const std::string& trigger, const Message& context,
                         const std::vector<ClientUpdate>& usable,
                         const std::vector<std::vector<int>>& usable_contribs,
                         bool evaluated) {
  const double now = context.timestamp;
  const bool hierarchical = options_.topology.hierarchical();
  if (hierarchical) {
    for (size_t i = 0; i < usable.size(); ++i) {
      for (int id : usable_contribs[i]) {
        obs_->Observe("fs_server_staleness", StalenessBounds(),
                      static_cast<double>(usable[i].staleness));
        obs_->Count("fs_server_agg_contributions_total", 1.0,
                    {{"client", std::to_string(id)}});
      }
    }
  } else {
    for (const auto& update : usable) {
      obs_->Observe("fs_server_staleness", StalenessBounds(),
                    static_cast<double>(update.staleness));
      obs_->Count("fs_server_agg_contributions_total", 1.0,
                  {{"client", std::to_string(update.client_id)}});
    }
  }
  obs_->Count("fs_server_aggregations_total", 1.0, {{"trigger", trigger}});
  obs_->Observe("fs_server_round_duration_seconds", LatencyBounds(),
                now - last_agg_time_);
  if (obs_->tracer != nullptr) {
    obs_->tracer->Span(
        "round " + std::to_string(round_), last_agg_time_, now - last_agg_time_,
        kServerId,
        {{"trigger", trigger}, {"updates", std::to_string(usable.size())}});
  }
  if (obs_->course_log != nullptr) {
    CourseRoundRecord record;
    record.round = round_;
    record.trigger = trigger;
    record.time = now;
    if (hierarchical) {
      for (size_t i = 0; i < usable.size(); ++i) {
        for (int id : usable_contribs[i]) {
          record.contributors.push_back(id);
          record.staleness.push_back(usable[i].staleness);
        }
      }
    } else {
      record.contributors.reserve(usable.size());
      record.staleness.reserve(usable.size());
      for (const auto& update : usable) {
        record.contributors.push_back(update.client_id);
        record.staleness.push_back(update.staleness);
      }
    }
    record.uplink_bytes = pending_uplink_bytes_;
    record.downlink_bytes = pending_downlink_bytes_;
    record.broadcasts = pending_broadcasts_;
    record.dropped_stale = pending_dropped_;
    record.declined = pending_declined_;
    record.dropouts = pending_dropouts_;
    record.replacements = pending_replacements_;
    record.partial_updates = pending_partials_;
    record.shard_failovers = pending_failovers_;
    record.updates_rejected = pending_rejected_;
    record.clients_quarantined = pending_quarantined_;
    if (evaluated) {
      record.evaluated = true;
      record.eval_accuracy = stats_.curve.back().second;
      record.eval_loss = last_eval_loss_;
    }
    obs_->course_log->Append(std::move(record));
  }
  last_agg_time_ = now;
  pending_uplink_bytes_ = 0;
  pending_downlink_bytes_ = 0;
  pending_broadcasts_ = 0;
  pending_dropped_ = 0;
  pending_declined_ = 0;
  pending_dropouts_ = 0;
  pending_replacements_ = 0;
  pending_partials_ = 0;
  pending_failovers_ = 0;
  pending_rejected_ = 0;
  pending_quarantined_ = 0;
}

bool Server::EvaluateAndCheckStop(const Message& context) {
  if (evaluator_ &&
      (round_ % std::max(options_.eval_interval, 1) == 0 ||
       round_ >= options_.max_rounds)) {
    EvalResult eval = evaluator_(&global_model_);
    stats_.curve.emplace_back(context.timestamp, eval.accuracy);
    last_eval_loss_ = eval.loss;
    stats_.final_accuracy = eval.accuracy;
    if (eval.accuracy > stats_.best_accuracy) {
      stats_.best_accuracy = eval.accuracy;
      evals_since_best_ = 0;
    } else {
      ++evals_since_best_;
    }
    if (options_.target_accuracy > 0.0 &&
        eval.accuracy >= options_.target_accuracy) {
      stats_.reached_target = true;
      stats_.time_to_target = context.timestamp;
      RaiseEvent(events::kTargetReached, context);
      return true;
    }
    if (options_.early_stop_patience > 0 &&
        evals_since_best_ >= options_.early_stop_patience) {
      RaiseEvent(events::kEarlyStop, context);
      return true;
    }
  }
  if (round_ >= options_.max_rounds) {
    FinishCourse(context);
    return true;
  }
  return false;
}

void Server::FinishCourse(const Message& context) {
  if (finished_) return;
  finished_ = true;
  stats_.finish_time = context.timestamp;
  if (options_.collect_client_metrics) {
    // Final evaluation round: ask every client for its local metrics
    // before dismissing it (the evaluate/metrics flow of Table 2).
    for (int id : clients_) {
      Message msg;
      msg.receiver = id;
      msg.msg_type = events::kEvaluate;
      msg.state = round_;
      msg.timestamp = context.timestamp;
      Send(std::move(msg));
    }
  }
  for (int id : clients_) {
    Message msg;
    msg.receiver = id;
    msg.msg_type = events::kFinish;
    msg.state = round_;
    msg.timestamp = context.timestamp;
    Send(std::move(msg));
  }
  // Dismiss the edge aggregators too (stops standby watchdog timers).
  for (int shard = 0; shard < options_.topology.num_shards; ++shard) {
    for (int slot = 0; slot <= options_.topology.standbys_per_shard; ++slot) {
      Message msg;
      msg.receiver = AggregatorId(shard, slot);
      msg.msg_type = events::kFinish;
      msg.state = round_;
      msg.timestamp = context.timestamp;
      Send(std::move(msg));
    }
  }
}

void Server::OnMetrics(const Message& msg) {
  stats_.client_metrics[msg.sender] =
      msg.payload.GetDouble("test_acc", -1.0);
  FS_LOG(Debug) << "metrics from client " << msg.sender << ": acc="
                << msg.payload.GetDouble("test_acc", -1.0);
}

}  // namespace fedscope
