#ifndef FEDSCOPE_CORE_AGGREGATOR_H_
#define FEDSCOPE_CORE_AGGREGATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/nn/model.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// One buffered client contribution. `delta` is the change of the *shared*
/// parameters produced by local training (theta_local - theta_received);
/// exchanging deltas rather than full models keeps sync FedAvg, async
/// staleness discounting, and robust aggregation under one interface.
struct ClientUpdate {
  int client_id = 0;
  /// Round of the global model the client started from.
  int round_started = 0;
  /// Version difference at aggregation time (current round - round_started).
  int staleness = 0;
  /// Examples processed locally (FedAvg weighting).
  double num_samples = 1.0;
  /// Local SGD steps taken (FedNova normalization).
  int local_steps = 1;
  StateDict delta;
};

/// Federated aggregation, decoupled from the server's behaviour
/// (paper §3.6: "for the aggregator ... users only need to implement how
/// to aggregate"). Takes the current global shared state and the buffered
/// updates; returns the new global shared state, or an error Status when
/// the buffer is unusable (empty cohort, update missing a delta key) —
/// hostile input must surface as a recoverable error, never a crash.
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual std::string Name() const = 0;
  virtual Result<StateDict> Aggregate(
      const StateDict& global, const std::vector<ClientUpdate>& updates) = 0;

  /// Persists aggregator-internal course state (e.g. server momentum) into
  /// `p` under `prefix` for crash snapshots. Stateless aggregators write
  /// nothing; constructor hyperparameters are rebuilt from the spec.
  virtual void SaveState(Payload* /*p*/, const std::string& /*prefix*/) const {
  }
  /// Restores state written by SaveState onto a freshly built aggregator.
  virtual void LoadState(const Payload& /*p*/,
                         const std::string& /*prefix*/) {}
};

/// Options shared by the averaging-style aggregators.
struct FedAvgOptions {
  /// Server-side step size applied to the averaged delta.
  double server_lr = 1.0;
  /// Staleness discount exponent: weight *= (1 + staleness)^(-rho).
  /// rho = 0 disables discounting (vanilla FedAvg).
  double staleness_rho = 0.5;
};

/// Weighted averaging of deltas (weights = num_samples x staleness
/// discount), applied to the global model. With rho=0 and synchronous
/// updates this is exactly FedAvg; with rho>0 it is the staleness-
/// discounted aggregation of asynchronous FL (§3.3.1-i).
class FedAvgAggregator : public Aggregator {
 public:
  explicit FedAvgAggregator(FedAvgOptions options = {}) : options_(options) {}
  std::string Name() const override { return "fedavg"; }
  Result<StateDict> Aggregate(
      const StateDict& global,
      const std::vector<ClientUpdate>& updates) override;

 private:
  FedAvgOptions options_;
};

/// FedOpt: server-side momentum SGD on the averaged delta.
class FedOptAggregator : public Aggregator {
 public:
  FedOptAggregator(double server_lr, double server_momentum,
                   double staleness_rho = 0.0)
      : server_lr_(server_lr),
        server_momentum_(server_momentum),
        staleness_rho_(staleness_rho) {}
  std::string Name() const override { return "fedopt"; }
  Result<StateDict> Aggregate(
      const StateDict& global,
      const std::vector<ClientUpdate>& updates) override;
  void SaveState(Payload* p, const std::string& prefix) const override;
  void LoadState(const Payload& p, const std::string& prefix) override;

 private:
  double server_lr_;
  double server_momentum_;
  double staleness_rho_;
  StateDict momentum_;
};

/// FedNova: normalizes each delta by its local step count to remove
/// objective inconsistency, then applies the sample-weighted mean step.
class FedNovaAggregator : public Aggregator {
 public:
  std::string Name() const override { return "fednova"; }
  Result<StateDict> Aggregate(
      const StateDict& global,
      const std::vector<ClientUpdate>& updates) override;
};

/// Krum / Multi-Krum Byzantine-robust aggregation (paper §3.6,
/// "Robustness Against Malicious Participants"). Scores every update by
/// the sum of squared distances to its n-f-2 nearest neighbours and keeps
/// the `multi_k` best-scoring updates (multi_k=1 is classic Krum).
class KrumAggregator : public Aggregator {
 public:
  KrumAggregator(int num_malicious, int multi_k = 1)
      : num_malicious_(num_malicious), multi_k_(multi_k) {}
  std::string Name() const override { return "krum"; }
  Result<StateDict> Aggregate(
      const StateDict& global,
      const std::vector<ClientUpdate>& updates) override;

  /// Indices of the updates selected in the last Aggregate call.
  const std::vector<int>& last_selection() const { return last_selection_; }

 private:
  int num_malicious_;
  int multi_k_;
  std::vector<int> last_selection_;
};

/// Coordinate-wise trimmed mean: drops the `trim_frac` largest and smallest
/// values per coordinate before averaging (trim_frac=0.5 -> median-like).
class TrimmedMeanAggregator : public Aggregator {
 public:
  explicit TrimmedMeanAggregator(double trim_frac)
      : trim_frac_(trim_frac) {}
  std::string Name() const override { return "trimmed_mean"; }
  Result<StateDict> Aggregate(
      const StateDict& global,
      const std::vector<ClientUpdate>& updates) override;

 private:
  double trim_frac_;
};

/// Coordinate-wise median of deltas.
class MedianAggregator : public Aggregator {
 public:
  std::string Name() const override { return "median"; }
  Result<StateDict> Aggregate(
      const StateDict& global,
      const std::vector<ClientUpdate>& updates) override;
};

/// Computes the per-update weights (num_samples x staleness discount) used
/// by averaging aggregators; exposed for tests.
std::vector<double> UpdateWeights(const std::vector<ClientUpdate>& updates,
                                  double staleness_rho);

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_AGGREGATOR_H_
