#ifndef FEDSCOPE_CORE_FED_RUNNER_H_
#define FEDSCOPE_CORE_FED_RUNNER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fedscope/core/client.h"
#include "fedscope/core/client_cache.h"
#include "fedscope/core/completeness.h"
#include "fedscope/core/edge_aggregator.h"
#include "fedscope/core/server.h"
#include "fedscope/data/client_data_provider.h"
#include "fedscope/data/dataset.h"
#include "fedscope/exec/buffering_channel.h"
#include "fedscope/exec/execution.h"
#include "fedscope/exec/worker_pool.h"
#include "fedscope/fault/dedup.h"
#include "fedscope/fault/fault_channel.h"
#include "fedscope/fault/fault_plan.h"
#include "fedscope/obs/obs_context.h"
#include "fedscope/sim/event_queue.h"

namespace fedscope {

/// Everything needed to stand up one FL course in standalone simulation.
struct FedJob {
  /// The federated dataset (not owned; must outlive the runner).
  const FedDataset* data = nullptr;
  /// Initial global model; every client starts from a copy.
  Model init_model;
  ServerOptions server;
  /// Base client options; per-client device profiles come from `fleet`.
  ClientOptions client;
  /// One device profile per client; empty -> a homogeneous default fleet.
  std::vector<DeviceProfile> fleet;
  /// Builds each client's Trainer (default: GeneralTrainer). Called with
  /// the 1-based client id.
  std::function<std::unique_ptr<BaseTrainer>(int)> trainer_factory;
  /// Builds the server's Aggregator (default: FedAvgAggregator with the
  /// job's staleness_rho).
  std::function<std::unique_ptr<Aggregator>()> aggregator_factory;
  /// Optional per-client customization hook, applied after the base
  /// options are copied (client-specific configs, DP opt-in, etc).
  std::function<void(int, ClientOptions*)> client_customizer;
  /// Custom global-model evaluator; default evaluates the model as a
  /// classifier on data->server_test. FedEM installs a mixture evaluator.
  std::function<EvalResult(Model*)> evaluator;
  /// Staleness discount exponent handed to the default aggregator.
  double staleness_rho = 0.5;
  /// Route every message through the binary wire codec (encode + decode),
  /// proving backend independence at a small CPU cost.
  bool through_wire = false;
  /// Fault model applied to the course through a FaultInjectingChannel
  /// decorator (workers stay unchanged). All-null by default: the
  /// decorator is not even constructed and behaviour is byte-identical to
  /// a fault-free build. Seeded plans replay identically for equal seeds.
  FaultPlanOptions fault;
  /// Run the completeness check before starting (error if incomplete).
  bool check_completeness = true;
  /// Observability sinks (borrowed; must outlive the runner). All-null by
  /// default: the course runs with zero instrumentation overhead and
  /// byte-identical behaviour. In standalone mode every recorded timestamp
  /// is virtual, so same-seed runs produce identical metric snapshots,
  /// traces, and course logs.
  ObsContext obs;
  /// Course-introspection taps for the fuzzing harness (testing/). Both
  /// default to null (no overhead). `send_tap` observes every worker-side
  /// Send *before* fault injection; `delivery_tap` observes every message
  /// the pump dispatches (after duplicate suppression). Together they make
  /// message conservation checkable: delivered == sent - faulted-away
  /// + fault-duplicated - suppressed.
  std::function<void(const Message&)> send_tap;
  std::function<void(const Message&)> delivery_tap;
  /// Suppress fault-injected duplicate deliveries in the pump — the
  /// standalone analogue of the distributed server host's
  /// DuplicateSuppressor. Off by default: behaviour is unchanged unless a
  /// course opts in (fault plans with msg_duplicate_prob > 0).
  bool suppress_duplicates = false;
  /// Durable snapshot policy (DESIGN.md §10). Disabled by default (empty
  /// directory): no snapshot is ever exported and behaviour is unchanged.
  /// The crash drill is driven by fault.server_crash_at_event.
  SnapshotPolicy snapshot;
  /// Execution backend (DESIGN.md §12). kSerial (the default) pumps
  /// everything on one thread; kThreaded trains equal-virtual-time client
  /// deliveries on a worker pool and commits their effects in canonical
  /// order, bit-identical to kSerial under the same seed.
  ExecutionOptions exec;
  /// Client virtualization (DESIGN.md §13). Off by default: all clients
  /// are instantiated eagerly at construction, exactly as before. On: the
  /// population exists as descriptors only; a bounded ClientCache
  /// instantiates a Client when a message must be delivered to it and
  /// reclaims it afterwards, so peak live clients is O(cohort) rather
  /// than O(population). Bit-identical to the eager path under the same
  /// seed (oracle 12).
  bool virtualize = false;
  /// Live-client bound for the virtualized cache. 0 = auto: the cohort
  /// size (concurrency plus the over-selection margin) plus slack. A pure
  /// performance knob — any capacity >= 1 yields the same course.
  int client_cache_capacity = 0;
  /// Run the end-of-course deployment evaluation over every client
  /// (RunResult::client_test_accuracy). On by default (paper Figure 12);
  /// turn off for cross-device-scale courses where the O(population)
  /// final sweep dominates. Honoured by both eager and virtualized runs.
  bool deploy_eval = true;
  /// Lazy data source for virtualized courses (borrowed; must outlive the
  /// runner). Null with virtualize on: `data` is wrapped in an
  /// EagerDataProvider. Requires virtualize.
  const ClientDataProvider* provider = nullptr;
  /// Optional hook applied to every Client the virtualized cache
  /// instantiates (handler overrides, poisoners). When set, deliveries
  /// never short-circuit past instantiation — every targeted client is
  /// materialized so the decorated behaviour runs. Eager runs ignore it
  /// (decorate via runner.client(id) before Run()).
  std::function<void(int, Client*)> client_decorator;
  uint64_t seed = 1234;
};

/// Result of FedRunner::Run (the server stats plus client-side outcomes).
struct RunResult {
  ServerStats server;
  /// Deployment-model test accuracy per client (personalized accuracy for
  /// personalized trainers) — the quantity of Figure 12.
  std::vector<double> client_test_accuracy;
  std::vector<double> client_test_loss;
  /// Final global model (checkpoint for HPO restore).
  Model final_model;
  /// Completeness report of the constructed course.
  CompletenessReport completeness;
};

/// Standalone-mode runner: instantiates the server and all clients,
/// connects them through a virtual-time event queue, and pumps messages
/// until the course terminates (paper §5.3.1's virtual-timestamp
/// simulation). The runner itself is the CommChannel: workers' Send calls
/// become queue pushes.
class FedRunner : public CommChannel {
 public:
  explicit FedRunner(FedJob job);

  /// Runs the FL course to completion and returns the collected results.
  RunResult Run();

  /// CommChannel: accepts a message into the virtual-time queue.
  void Send(const Message& msg) override;

  Server* server() { return server_.get(); }
  /// The client with id `id` (1-based). Virtualized: instantiates it if
  /// needed; the pointer stays valid until the next delivery to a
  /// different client (which may reclaim it).
  Client* client(int id);
  /// Population size (== live client count only in eager mode).
  int num_clients() const { return population_; }
  /// The virtualized client cache (null in eager mode).
  const ClientCache* client_cache() const { return cache_.get(); }
  /// Edge aggregator of `shard` × `slot` (hierarchical topologies only;
  /// null when the incarnation does not exist).
  EdgeAggregator* aggregator(int shard, int slot);
  const std::vector<std::unique_ptr<EdgeAggregator>>& aggregators() const {
    return aggregators_;
  }
  /// Aggregator incarnations killed by FaultPlan::aggregator_crashes.
  int64_t aggregators_killed() const { return aggregators_killed_; }
  /// The instantiated fault model (disabled when FedJob::fault is null).
  const FaultPlan& fault_plan() const { return fault_plan_; }
  /// Deliveries suppressed by FedJob::suppress_duplicates (0 when off).
  int64_t duplicates_suppressed() const { return dedup_.suppressed(); }
  /// Server kill+restore drills performed (fault.server_crash_at_event).
  int64_t recoveries() const { return recoveries_; }
  /// Durable snapshots written under FedJob::snapshot.
  const SnapshotWriter& snapshot_writer() const { return snapshot_writer_; }

 private:
  /// Observes worker-side sends (pre-fault) and forwards to `inner`.
  /// Defined here so FedRunner can hold it without a custom destructor.
  class TapChannel : public CommChannel {
   public:
    TapChannel(CommChannel* inner, const std::function<void(const Message&)>* tap)
        : inner_(inner), tap_(tap) {}
    void Send(const Message& msg) override {
      (*tap_)(msg);
      inner_->Send(msg);
    }

   private:
    CommChannel* inner_;
    const std::function<void(const Message&)>* tap_;
  };

  void BuildWorkers();
  /// Client `id`'s effective options — base + fleet device + forked seed +
  /// customizer — derived identically by the eager construction loop and
  /// every virtualized (re-)instantiation.
  ClientOptions DeriveClientOptions(int id) const;
  /// Factory for the virtualized cache: builds client `id` wired exactly
  /// as the eager path would (port included on the threaded backend).
  ClientCache::Entry MakeCacheEntry(int id);
  /// Effective cache capacity (client_cache_capacity, or the auto bound).
  int CacheCapacity() const;
  /// Delivers a pump-loop message to a (possibly non-live) virtual
  /// client, short-circuiting state-free deliveries past instantiation.
  void DeliverToVirtualClient(const Message& msg);
  /// Threaded backend: forms the maximal batch of equal-virtual-time
  /// client-targeted deliveries at the queue front, handles them on the
  /// worker pool with per-delivery capture (sends, metric ops, trace
  /// events), then commits every captured effect in canonical order — the
  /// serial pop order. Returns the number of queue entries consumed (0:
  /// fewer than two batchable deliveries; the caller takes one serial
  /// step). `delivered` advances exactly as the serial pump would.
  size_t RunParallelStage(int64_t* delivered);
  /// Constructs the server exactly as BuildWorkers does, wired to the same
  /// decorated channel — shared with the crash-restore path so a rebuilt
  /// server is indistinguishable from the original.
  std::unique_ptr<Server> MakeServer();
  /// The crash drill: exports a snapshot, serializes it through the wire
  /// codec (what a restarted process would read from disk), destroys the
  /// server, and restores a freshly built one from the bytes. Clients and
  /// the event queue survive — they are the other processes / the network.
  void CrashAndRestoreServer();
  /// Exports and durably writes a snapshot per FedJob::snapshot.
  void WriteSnapshot();
  /// Delivers `msg` to an edge aggregator, applying the fault plan's
  /// aggregator-crash schedule (a dead incarnation silently eats traffic,
  /// the standalone analogue of a mid-course TCP EOF).
  void DeliverToAggregator(const Message& msg);
  /// Writes `agg`'s durable checkpoint when its forwarded count advanced
  /// (per-shard "s<N>-"-prefixed files under FedJob::snapshot.directory).
  void MaybeSnapshotAggregator(EdgeAggregator* agg);
  /// Non-const: a virtualized course instantiates client 1 to read its
  /// handler registry.
  CompletenessReport CheckCompleteness();

  FedJob job_;
  /// Total participant count (descriptors in virtualized mode).
  int population_ = 0;
  /// Wraps job_.data when virtualize is on without an explicit provider.
  std::unique_ptr<EagerDataProvider> owned_provider_;
  /// Data source of virtualized courses (null in eager mode).
  const ClientDataProvider* provider_ = nullptr;
  /// Bounded live-client cache (null in eager mode).
  std::unique_ptr<ClientCache> cache_;
  EventQueue queue_;
  FaultPlan fault_plan_;
  std::unique_ptr<FaultInjectingChannel> fault_channel_;
  std::unique_ptr<TapChannel> tap_channel_;
  PairwiseDuplicateSuppressor dedup_;
  std::unique_ptr<Server> server_;
  std::vector<std::unique_ptr<Client>> clients_;  // index 0 -> client id 1
  /// All edge-aggregator incarnations (hierarchical topologies only),
  /// indexed through aggregator_index_ by worker id.
  std::vector<std::unique_ptr<EdgeAggregator>> aggregators_;
  std::map<int, size_t> aggregator_index_;
  std::set<int> dead_aggregators_;
  int64_t aggregators_killed_ = 0;
  /// Per-shard durable snapshot writers ("s<N>-" filename prefix so all
  /// shards and the root share FedJob::snapshot.directory safely).
  std::vector<SnapshotWriter> shard_writers_;
  std::vector<int64_t> shard_forwarded_;
  /// The channel handed to workers (outermost decorator); kept so a
  /// crash-restored server is wired identically to the original.
  CommChannel* worker_channel_ = nullptr;
  /// Threaded backend only: per-client send buffers (index 0 -> client 1)
  /// between each client and worker_channel_, and the pool that runs the
  /// batches. Both absent under kSerial — wiring is byte-identical to
  /// before the backend existed.
  std::vector<std::unique_ptr<BufferingChannel>> ports_;
  std::unique_ptr<WorkerPool> pool_;
  SnapshotWriter snapshot_writer_;
  int64_t recoveries_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_FED_RUNNER_H_
