#include "fedscope/core/client_cache.h"

#include <algorithm>
#include <string>
#include <utility>

#include "fedscope/core/checkpoint.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

std::string IdPrefix(int id) { return "vc/" + std::to_string(id) + "/"; }

}  // namespace

ClientCache::ClientCache(int population, int capacity, EntryFactory factory)
    : population_(population),
      capacity_(capacity),
      factory_(std::move(factory)),
      finished_(static_cast<size_t>(population) + 1, 0) {
  FS_CHECK_GT(population_, 0);
  FS_CHECK_GE(capacity_, 1);
  FS_CHECK(factory_ != nullptr);
}

Client* ClientCache::Get(int id) {
  FS_CHECK_GE(id, 1);
  FS_CHECK_LE(id, population_);
  auto it = live_.find(id);
  if (it != live_.end()) {
    auto pos = lru_pos_.find(id);
    lru_.erase(pos->second);
    lru_.push_front(id);
    pos->second = lru_.begin();
    return it->second.client.get();
  }
  Entry entry = factory_(id);
  FS_CHECK(entry.client != nullptr);
  ++stats_.instantiations;
  auto sit = suspended_.find(id);
  if (sit != suspended_.end()) {
    entry.client->RestoreResume(sit->second);
    suspended_.erase(sit);
    ++stats_.restores;
  } else if (finished_[id] != 0) {
    Payload resume;
    resume.SetInt("finished", 1);
    entry.client->RestoreResume(resume);
    ++stats_.restores;
  }
  finished_[id] = 0;  // tracked by the live client from here on
  Client* raw = entry.client.get();
  live_.emplace(id, std::move(entry));
  lru_.push_front(id);
  lru_pos_[id] = lru_.begin();
  ++stats_.live;
  stats_.live_peak = std::max(stats_.live_peak, stats_.live);
  return raw;
}

BufferingChannel* ClientCache::Port(int id) {
  auto it = live_.find(id);
  FS_CHECK(it != live_.end());
  FS_CHECK(it->second.port != nullptr);
  return it->second.port.get();
}

void ClientCache::MarkFinished(int id) {
  FS_CHECK_GE(id, 1);
  FS_CHECK_LE(id, population_);
  FS_CHECK(!IsLive(id));
  auto sit = suspended_.find(id);
  if (sit != suspended_.end()) {
    sit->second.SetInt("finished", 1);
  } else {
    finished_[id] = 1;
  }
}

void ClientCache::EvictOne() {
  FS_CHECK(!lru_.empty());
  const int victim = lru_.back();
  lru_.pop_back();
  lru_pos_.erase(victim);
  auto it = live_.find(victim);
  FS_CHECK(it != live_.end());
  Payload resume;
  it->second.client->ExportResume(&resume);
  suspended_[victim] = std::move(resume);
  live_.erase(it);
  ++stats_.evictions;
  --stats_.live;
}

void ClientCache::Trim() {
  while (static_cast<int>(live_.size()) > capacity_) EvictOne();
}

void ClientCache::ExportState(Payload* p) {
  p->SetInt("population", population_);
  std::vector<int64_t> suspended_ids;
  suspended_ids.reserve(suspended_.size() + live_.size());
  for (const auto& [id, payload] : suspended_) {
    suspended_ids.push_back(id);
    MergePayloadWithPrefix(p, IdPrefix(id), payload);
  }
  // Live clients checkpoint through the same resume path but stay live.
  for (auto& [id, entry] : live_) {
    suspended_ids.push_back(id);
    Payload resume;
    entry.client->ExportResume(&resume);
    MergePayloadWithPrefix(p, IdPrefix(id), resume);
  }
  std::sort(suspended_ids.begin(), suspended_ids.end());
  SetPackedInt64s(p, "suspended_ids", suspended_ids);
  std::vector<int64_t> finished_ids;
  for (int id = 1; id <= population_; ++id) {
    if (finished_[id] != 0) finished_ids.push_back(id);
  }
  SetPackedInt64s(p, "finished_ids", finished_ids);
}

void ClientCache::RestoreState(const Payload& p) {
  FS_CHECK(live_.empty());
  FS_CHECK_EQ(p.GetInt("population"), population_);
  suspended_.clear();
  std::fill(finished_.begin(), finished_.end(), 0);
  for (int64_t id : GetPackedInt64s(p, "suspended_ids")) {
    suspended_[static_cast<int>(id)] =
        ExtractPayloadPrefix(p, IdPrefix(static_cast<int>(id)));
  }
  for (int64_t id : GetPackedInt64s(p, "finished_ids")) {
    finished_[static_cast<size_t>(id)] = 1;
  }
}

}  // namespace fedscope
