#include "fedscope/core/edge_aggregator.h"

#include <algorithm>
#include <utility>

#include "fedscope/comm/compression.h"
#include "fedscope/core/events.h"
#include "fedscope/obs/obs_context.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

constexpr char kModelKey[] = "model";
constexpr char kDeltaKey[] = "delta";

}  // namespace

EdgeAggregator::EdgeAggregator(EdgeAggregatorOptions options,
                               CommChannel* channel)
    : BaseWorker(AggregatorId(options.shard, options.slot), channel),
      options_(std::move(options)),
      active_(options_.slot == 0) {
  FS_CHECK_OK(ValidateTopology(options_.topology));
  FS_CHECK_GE(options_.shard, 0);
  FS_CHECK_LT(options_.shard, options_.topology.num_shards);
  FS_CHECK_GE(options_.slot, 0);
  FS_CHECK_LE(options_.slot, options_.topology.standbys_per_shard);
  if (options_.guard.enabled) {
    guard_ = std::make_unique<UpdateGuard>(options_.guard);
  }
  RegisterDefaultHandlers();
}

void EdgeAggregator::RegisterDefaultHandlers() {
  registry_.Register(
      events::kModelPara, [this](const Message& msg) { OnModelPara(msg); },
      /*emits=*/{events::kModelPara, events::kShardSnapshot});
  registry_.Register(
      events::kModelUpdate, [this](const Message& msg) { OnModelUpdate(msg); },
      /*emits=*/{events::kPartialUpdate, events::kShardSnapshot});
  registry_.Register(
      events::kClientFailure,
      [this](const Message& msg) { OnClientFailure(msg); },
      /*emits=*/{events::kPartialUpdate, events::kShardSnapshot});
  registry_.Register(
      events::kShardSnapshot,
      [this](const Message& msg) { OnShardSnapshot(msg); });
  registry_.Register(
      events::kTimer, [this](const Message& msg) { OnTimer(msg); },
      /*emits=*/{events::kStandbyPromoted, events::kTimer});
  registry_.Register(events::kFinish,
                     [this](const Message& msg) { OnFinish(msg); });
}

void EdgeAggregator::StartWatchdog() {
  if (options_.slot == 0 || active_ || finished_) return;
  ScheduleWatchdog(last_heard_ + WatchdogDeadline());
}

void EdgeAggregator::ScheduleWatchdog(double fire_at) {
  Message timer;
  timer.receiver = id_;
  timer.msg_type = events::kTimer;
  timer.state = round_;
  timer.timestamp = std::max(fire_at, current_time_);
  Send(std::move(timer));
}

void EdgeAggregator::OnModelPara(const Message& msg) {
  if (finished_) return;
  // A broadcast addressed here means the root considers this slot active
  // (promotion acknowledged, or initial primary duty).
  active_ = true;
  last_heard_ = msg.timestamp;
  epoch_ = std::max(epoch_, msg.payload.GetInt("shard_epoch", 0));
  if (msg.state > round_) {
    // New round: whatever sub-cohort state is left over is stale.
    round_ = msg.state;
    outstanding_.clear();
    deltas_.clear();
    weights_.clear();
    contributors_.clear();
    declined_ids_.clear();
    rejected_ids_.clear();
    max_local_steps_ = 1;
  }
  const std::vector<int64_t> cohort = GetPackedInt64s(msg.payload, "cohort");
  const StateDict model = msg.payload.GetStateDict(kModelKey);
  if (guard_ != nullptr) signature_ = model;
  for (int64_t id : cohort) {
    outstanding_.insert(static_cast<int>(id));
    Message relay;
    relay.receiver = static_cast<int>(id);
    relay.msg_type = events::kModelPara;
    relay.state = msg.state;
    relay.timestamp = msg.timestamp;
    relay.payload.SetStateDict(kModelKey, model);
    relay.payload.SetInt("shard_epoch", epoch_);
    Send(std::move(relay));
  }
  ReplicateState(msg.timestamp);
}

void EdgeAggregator::OnModelUpdate(const Message& msg) {
  if (finished_) return;
  if (outstanding_.erase(msg.sender) == 0) {
    // Not in the current sub-cohort: output of a superseded round or
    // incarnation; the root's re-broadcast already re-covers its client.
    FS_LOG(Warning) << "aggregator " << id_ << " ignoring unexpected update"
                    << " from client " << msg.sender;
    return;
  }
  ++updates_received_;
  if (msg.payload.GetInt("declined", 0) != 0) {
    declined_ids_.push_back(msg.sender);
  } else {
    // Transparent decompression, mirroring the root's model_update path,
    // so per-client compression operators work under sharding too.
    StateDict delta;
    const std::string codec = msg.payload.GetString("codec");
    if (codec == "quant8") {
      auto decoded = DequantizeStateDict(msg.payload);
      if (!decoded.ok()) {
        FS_LOG(Warning) << "dropping undecodable quant8 update from "
                        << msg.sender << ": " << decoded.status().ToString();
        delta.clear();
      } else {
        delta = std::move(decoded.value());
      }
    } else if (codec == "topk") {
      auto decoded = DesparsifyStateDict(msg.payload);
      if (!decoded.ok()) {
        FS_LOG(Warning) << "dropping undecodable topk update from "
                        << msg.sender << ": " << decoded.status().ToString();
        delta.clear();
      } else {
        delta = std::move(decoded.value());
      }
    } else {
      delta = msg.payload.GetStateDict(kDeltaKey);
    }
    bool usable = !delta.empty();
    if (usable && guard_ != nullptr) {
      // Violations are booked at the root (quarantine is course-global);
      // the edge only screens so a poisoned member update never enters
      // the forwarded partial.
      const GuardDecision decision = guard_->Inspect(
          msg.sender, signature_, &delta, /*track_violations=*/false);
      if (decision.rejected()) {
        usable = false;
        rejected_ids_.push_back(msg.sender);
        ++updates_rejected_;
        FS_LOG(Warning) << "aggregator " << id_
                        << " rejecting update from client " << msg.sender
                        << " (" << GuardReasonLabel(decision.verdict)
                        << "): " << decision.detail;
        if (obs_ != nullptr && obs_->enabled()) {
          obs_->Count("fs_aggregator_updates_rejected_total", 1.0,
                      {{"reason", GuardReasonLabel(decision.verdict)}});
        }
      }
    }
    if (usable) {
      deltas_.push_back(std::move(delta));
      weights_.push_back(
          static_cast<double>(msg.payload.GetInt("num_samples", 1)));
      contributors_.push_back(msg.sender);
      max_local_steps_ =
          std::max(max_local_steps_,
                   static_cast<int>(msg.payload.GetInt("local_steps", 1)));
    }
  }
  if (outstanding_.empty()) ForwardPartial(msg.timestamp);
}

void EdgeAggregator::OnClientFailure(const Message& msg) {
  if (finished_) return;
  if (outstanding_.erase(msg.sender) == 0) return;
  FS_LOG(Debug) << "aggregator " << id_ << " saw client " << msg.sender
                << " fail";
  // The root handles the dropout itself (replacement sampling / cohort
  // shrink); here the shard just stops waiting. Forward what is buffered:
  // no further reply of this sub-cohort can arrive.
  if (outstanding_.empty()) ForwardPartial(msg.timestamp);
}

void EdgeAggregator::ForwardPartial(double timestamp) {
  if (contributors_.empty() && declined_ids_.empty() &&
      rejected_ids_.empty()) {
    return;
  }
  Message partial;
  partial.receiver = kServerId;
  partial.msg_type = events::kPartialUpdate;
  partial.state = round_;
  partial.timestamp = timestamp;
  partial.payload.SetInt("shard", options_.shard);
  partial.payload.SetInt("shard_epoch", epoch_);
  SetPackedInt64s(&partial.payload, "contributors", contributors_);
  SetPackedInt64s(&partial.payload, "declined_ids", declined_ids_);
  // Key present only when something was rejected: partials of guard-off
  // and of guarded-but-clean rounds stay byte-identical on the wire (the
  // guard-transparency oracle compares payload-size metrics too).
  if (!rejected_ids_.empty()) {
    SetPackedInt64s(&partial.payload, "rejected_ids", rejected_ids_);
  }
  if (!contributors_.empty()) {
    std::vector<const StateDict*> dicts;
    dicts.reserve(deltas_.size());
    for (const StateDict& d : deltas_) dicts.push_back(&d);
    partial.payload.SetStateDict(kDeltaKey,
                                 SdWeightedAverage(dicts, weights_));
    double total_weight = 0.0;
    for (double w : weights_) total_weight += w;
    partial.payload.SetDouble("total_weight", total_weight);
    partial.payload.SetInt("local_steps", max_local_steps_);
  }
  Send(std::move(partial));
  ++partials_forwarded_;
  if (obs_ != nullptr && obs_->enabled()) {
    obs_->Count("fs_aggregator_partial_updates_forwarded_total");
  }
  deltas_.clear();
  weights_.clear();
  contributors_.clear();
  declined_ids_.clear();
  rejected_ids_.clear();
  max_local_steps_ = 1;
  ReplicateState(timestamp);
}

void EdgeAggregator::ReplicateState(double timestamp) {
  if (!active_) return;
  for (int slot = 0; slot <= options_.topology.standbys_per_shard; ++slot) {
    if (slot == options_.slot) continue;
    Message snapshot;
    snapshot.receiver = AggregatorId(options_.shard, slot);
    snapshot.msg_type = events::kShardSnapshot;
    snapshot.state = round_;
    snapshot.timestamp = timestamp;
    snapshot.payload = ExportSnapshot();
    Send(std::move(snapshot));
  }
}

void EdgeAggregator::OnShardSnapshot(const Message& msg) {
  if (finished_ || active_) return;  // stale heartbeat of a superseded peer
  RestoreSnapshot(msg.payload);
  last_heard_ = msg.timestamp;
}

void EdgeAggregator::OnTimer(const Message& msg) {
  if (finished_ || active_ || options_.slot == 0) return;
  const double deadline = last_heard_ + WatchdogDeadline();
  if (msg.timestamp >= deadline) {
    Promote(msg.timestamp);
    return;
  }
  ScheduleWatchdog(deadline);
}

void EdgeAggregator::Promote(double timestamp) {
  FS_LOG(Warning) << "standby " << id_ << " (shard " << options_.shard
                  << " slot " << options_.slot << ") heard nothing for "
                  << WatchdogDeadline() << "s; promoting at epoch "
                  << epoch_ + 1;
  active_ = true;
  ++epoch_;
  ++promotions_;
  // The dead incarnation's buffered sub-cohort is unknown here (only meta
  // state replicates): discard local leftovers and let the root re-cover
  // every in-flight client of the shard under the new epoch.
  outstanding_.clear();
  deltas_.clear();
  weights_.clear();
  contributors_.clear();
  declined_ids_.clear();
  rejected_ids_.clear();
  max_local_steps_ = 1;
  if (obs_ != nullptr && obs_->enabled()) {
    obs_->Count("fs_aggregator_standby_promotions_total");
  }
  Message claim;
  claim.receiver = kServerId;
  claim.msg_type = events::kStandbyPromoted;
  claim.state = round_;
  claim.timestamp = timestamp;
  claim.payload.SetInt("shard", options_.shard);
  claim.payload.SetInt("shard_epoch", epoch_);
  Send(std::move(claim));
}

void EdgeAggregator::OnFinish(const Message& msg) {
  (void)msg;
  finished_ = true;
}

Payload EdgeAggregator::ExportSnapshot() const {
  Payload snapshot;
  snapshot.SetInt("epoch", epoch_);
  snapshot.SetInt("round", round_);
  snapshot.SetInt("forwarded", partials_forwarded_);
  return snapshot;
}

void EdgeAggregator::RestoreSnapshot(const Payload& snapshot) {
  epoch_ = std::max(epoch_, snapshot.GetInt("epoch", 0));
  round_ = std::max(round_,
                    static_cast<int>(snapshot.GetInt("round", -1)));
  partials_forwarded_ =
      std::max(partials_forwarded_, snapshot.GetInt("forwarded", 0));
}

Checkpoint EdgeAggregator::MakeCheckpoint() const {
  Checkpoint checkpoint;
  checkpoint.round = std::max(round_, 0);
  checkpoint.virtual_time = current_time_;
  checkpoint.course = ExportSnapshot();
  return checkpoint;
}

}  // namespace fedscope
