#ifndef FEDSCOPE_CORE_EDGE_AGGREGATOR_H_
#define FEDSCOPE_CORE_EDGE_AGGREGATOR_H_

#include <memory>
#include <set>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/core/checkpoint.h"
#include "fedscope/core/topology.h"
#include "fedscope/core/update_guard.h"
#include "fedscope/core/worker.h"
#include "fedscope/nn/model.h"

namespace fedscope {

/// Configuration of one edge-aggregator incarnation (shard × slot).
struct EdgeAggregatorOptions {
  Topology topology;
  /// Shard this aggregator serves (0-based, < topology.num_shards).
  int shard = 0;
  /// Slot within the shard: 0 is the initial primary, >= 1 are hot
  /// standbys in promotion order.
  int slot = 0;
  /// Ingress validation for shard member updates, mirroring the root's
  /// guard so a hostile shard member cannot poison the forwarded partial.
  /// Disabled by default: guard-off partials are byte-identical.
  UpdateGuardOptions guard;
};

/// Intermediate aggregation worker of a hierarchical topology: relays the
/// root's model_para broadcasts to its client shard, collects the shard's
/// model_update replies, pre-aggregates them into one weighted partial
/// update (Δ = Σ nᵢδᵢ / Σ nᵢ with total weight Σ nᵢ), and forwards it to
/// the root as a partial_update. An ordinary event-driven worker: all
/// behaviour lives in registered handlers and all traffic flows through
/// CommChannel::Send, so the same class runs unchanged under the
/// standalone FedRunner and the TCP distributed hosts.
///
/// Hot failover: the active incarnation replicates its per-round state to
/// the shard's standby slots after every round event (shard_snapshot, the
/// in-band heartbeat). A standby arms a self-addressed watchdog timer
/// (standalone-only, like kAsyncTime); when it has heard nothing for
/// topology.failure_timeout × slot (staggered so slot 1 claims before
/// slot 2), it promotes itself: bumps the shard's session epoch, announces
/// standby_promoted to the root, and the root re-broadcasts the shard's
/// in-flight cohort through it. Updates buffered by the dead incarnation
/// are deliberately NOT replayed — the root's re-broadcast re-covers every
/// in-flight client, and stale-epoch rejection keeps any late output of
/// the superseded incarnation from double-counting.
class EdgeAggregator : public BaseWorker {
 public:
  EdgeAggregator(EdgeAggregatorOptions options, CommChannel* channel);

  /// Arms the failure watchdog (standby slots only; the runner calls this
  /// once after course construction). No-op for the active slot.
  void StartWatchdog();

  /// Serializes the replicable shard state (session epoch, round,
  /// forwarded count) — the payload of shard_snapshot replication and the
  /// course section of this aggregator's durable checkpoints.
  Payload ExportSnapshot() const;
  /// Adopts replicated/restored shard state (monotonic: keeps the larger
  /// epoch and round).
  void RestoreSnapshot(const Payload& snapshot);
  /// Durable checkpoint of the replicable state (global_state left empty:
  /// the root re-broadcasts the model on promotion).
  Checkpoint MakeCheckpoint() const;

  const EdgeAggregatorOptions& options() const { return options_; }
  int shard() const { return options_.shard; }
  int slot() const { return options_.slot; }
  bool active() const { return active_; }
  bool finished() const { return finished_; }
  /// Shard session epoch this incarnation currently operates under.
  int64_t epoch() const { return epoch_; }
  /// Latest root round relayed through this incarnation.
  int round_seen() const { return round_; }
  int64_t partials_forwarded() const { return partials_forwarded_; }
  int64_t promotions() const { return promotions_; }
  int64_t updates_received() const { return updates_received_; }
  int64_t updates_rejected() const { return updates_rejected_; }

 private:
  void RegisterDefaultHandlers();
  void OnModelPara(const Message& msg);
  void OnModelUpdate(const Message& msg);
  void OnClientFailure(const Message& msg);
  void OnShardSnapshot(const Message& msg);
  void OnTimer(const Message& msg);
  void OnFinish(const Message& msg);

  /// Sends the weighted partial (plus decline notices) for the current
  /// sub-cohort to the root, then clears the accumulators and replicates.
  void ForwardPartial(double timestamp);
  /// Replicates ExportSnapshot() to every other slot of this shard.
  void ReplicateState(double timestamp);
  /// Schedules the next watchdog self-timer.
  void ScheduleWatchdog(double fire_at);
  /// Claims the shard: bumps the epoch and announces standby_promoted.
  void Promote(double timestamp);

  double WatchdogDeadline() const {
    return options_.topology.failure_timeout * options_.slot;
  }

  EdgeAggregatorOptions options_;
  bool active_ = false;
  bool finished_ = false;
  int64_t epoch_ = 0;
  /// Round of the latest root broadcast relayed (-1 before the first).
  int round_ = -1;
  /// Clients of the current sub-cohort whose reply is still outstanding.
  std::set<int> outstanding_;
  /// Buffered shard updates of the current sub-cohort (parallel vectors).
  std::vector<StateDict> deltas_;
  std::vector<double> weights_;
  std::vector<int64_t> contributors_;
  std::vector<int64_t> declined_ids_;
  /// Members whose updates this incarnation's guard rejected since the
  /// last forwarded partial; shipped to the root for violation booking.
  std::vector<int64_t> rejected_ids_;
  int max_local_steps_ = 1;
  /// Null unless options_.guard.enabled; violations are booked at the
  /// root, so this instance only screens.
  std::unique_ptr<UpdateGuard> guard_;
  /// Broadcast model of the current round — the signature member updates
  /// are validated against (tracked only when the guard is on).
  StateDict signature_;
  double last_heard_ = 0.0;
  int64_t partials_forwarded_ = 0;
  int64_t promotions_ = 0;
  int64_t updates_received_ = 0;
  int64_t updates_rejected_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_EDGE_AGGREGATOR_H_
