#include "fedscope/core/events.h"

#include <algorithm>

namespace fedscope {

std::vector<std::string> BuiltinMessageEvents() {
  return {events::kJoinIn,   events::kAssignId, events::kModelPara,
          events::kModelUpdate, events::kEvaluate, events::kMetrics,
          events::kFinish,   events::kTimer};
}

std::vector<std::string> BuiltinConditionEvents() {
  return {events::kAllReceived,  events::kGoalAchieved,
          events::kTimeUp,       events::kAllJoinedIn,
          events::kEarlyStop,    events::kTargetReached,
          events::kPerformanceDrop, events::kLowBandwidth};
}

EventClass ClassifyEvent(const std::string& event) {
  auto msgs = BuiltinMessageEvents();
  if (std::find(msgs.begin(), msgs.end(), event) != msgs.end()) {
    return EventClass::kMessagePassing;
  }
  // Delivered as messages despite being Table 2 extensions (they are kept
  // out of BuiltinMessageEvents, which reproduces the table verbatim).
  if (event == events::kClientFailure || event == events::kPartialUpdate ||
      event == events::kShardSnapshot || event == events::kStandbyPromoted) {
    return EventClass::kMessagePassing;
  }
  return EventClass::kConditionChecking;
}

}  // namespace fedscope
