#include "fedscope/core/distributed_aggregator.h"

#include <algorithm>
#include <utility>

#include "fedscope/core/events.h"
#include "fedscope/util/logging.h"

namespace fedscope {

DistributedAggregatorHost::DistributedAggregatorHost(
    EdgeAggregatorOptions options, const std::string& server_host,
    int server_port, TransportOptions transport)
    : server_host_(server_host),
      server_port_(server_port),
      transport_(transport),
      uplink_(new EpochUplink()) {
  connect_status_ = uplink_->Open(server_host, server_port, transport);
  aggregator_ =
      std::make_unique<EdgeAggregator>(std::move(options), uplink_.get());
}

DistributedAggregatorHost::~DistributedAggregatorHost() = default;

void DistributedAggregatorHost::set_obs(const ObsContext* obs) {
  uplink_->set_obs(obs);
  aggregator_->set_obs(obs);
}

std::string DistributedAggregatorHost::ShardPrefix() const {
  return "s" + std::to_string(aggregator_->shard()) + "-";
}

void DistributedAggregatorHost::set_snapshot_policy(SnapshotPolicy policy) {
  if (policy.worker_prefix.empty()) policy.worker_prefix = ShardPrefix();
  snapshot_writer_ = SnapshotWriter(std::move(policy));
}

Status DistributedAggregatorHost::RestoreFromSnapshotDir(
    const std::string& directory) {
  const std::string prefix = snapshot_writer_.enabled()
                                 ? snapshot_writer_.policy().worker_prefix
                                 : ShardPrefix();
  auto checkpoint = LoadLatestSnapshot(directory, prefix);
  if (!checkpoint.ok()) return checkpoint.status();
  aggregator_->RestoreSnapshot(checkpoint->course);
  FS_LOG(Info) << "aggregator " << aggregator_->id()
               << " restored shard state: round " << aggregator_->round_seen()
               << ", shard epoch " << aggregator_->epoch();
  return Status::Ok();
}

Status DistributedAggregatorHost::Run() {
  FS_RETURN_IF_ERROR(connect_status_);
  // Host-level handshake: teaches the root hub which connection carries
  // this worker id. Deliberately NOT a worker event — the root Server
  // worker never sees aggregator joins.
  Message hello;
  hello.sender = aggregator_->id();
  hello.receiver = kServerId;
  hello.msg_type = events::kJoinIn;
  uplink_->Send(hello);

  int64_t last_forwarded = aggregator_->partials_forwarded();
  while (!aggregator_->finished()) {
    auto msg = uplink_->Receive();
    if (!msg.ok()) {
      if (msg.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle between rounds (recv_timeout), keep waiting
      }
      uplink_->Close();
      return msg.status();
    }
    // Adopt the session epoch the root stamps on every relay before
    // handling it, so replies authenticate to the epoch they answer.
    if (msg->payload.HasScalar(kSessionEpochKey)) {
      uplink_->set_epoch(msg->payload.GetInt(kSessionEpochKey));
    }
    aggregator_->HandleMessage(*msg);
    if (aggregator_->partials_forwarded() != last_forwarded) {
      last_forwarded = aggregator_->partials_forwarded();
      if (snapshot_writer_.ShouldSnapshot(
              std::max(aggregator_->round_seen(), 1))) {
        auto written = snapshot_writer_.Write(aggregator_->MakeCheckpoint());
        if (!written.ok()) {
          FS_LOG(Warning) << "aggregator snapshot write failed: "
                          << written.status().ToString();
        }
      }
      // Simulated crash (tests/CI): die abruptly. Dropping the socket is
      // exactly what a SIGKILLed process does (the kernel closes its
      // descriptors); the root sees mid-course EOF and fails over.
      if (halt_after_forwards_ > 0 &&
          last_forwarded >= halt_after_forwards_) {
        FS_LOG(Warning) << "aggregator " << aggregator_->id()
                        << " halting after " << last_forwarded
                        << " forwarded partials (simulated crash)";
        uplink_->Close();
        return Status::Ok();
      }
    }
  }
  uplink_->Close();
  return Status::Ok();
}

}  // namespace fedscope
