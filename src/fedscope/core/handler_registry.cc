#include "fedscope/core/handler_registry.h"

#include <algorithm>

#include "fedscope/util/logging.h"

namespace fedscope {

bool HandlerRegistry::Register(const std::string& event, Handler handler,
                               std::vector<std::string> emits) {
  FS_CHECK(handler != nullptr);
  const bool overwrite = handlers_.count(event) > 0;
  if (overwrite) {
    // The paper's default conflict resolution: warn, latest wins.
    FS_LOG(Warning) << "event '" << event
                    << "' is already linked to a handler; the latest "
                       "registration overwrites the older one";
    ++overwrite_count_;
    order_.erase(std::remove(order_.begin(), order_.end(), event),
                 order_.end());
  }
  handlers_[event] = std::move(handler);
  flows_[event] = std::move(emits);
  order_.push_back(event);
  return overwrite;
}

bool HandlerRegistry::Unregister(const std::string& event) {
  order_.erase(std::remove(order_.begin(), order_.end(), event),
               order_.end());
  flows_.erase(event);
  return handlers_.erase(event) > 0;
}

bool HandlerRegistry::Has(const std::string& event) const {
  return handlers_.count(event) > 0;
}

Status HandlerRegistry::Dispatch(const std::string& event,
                                 const Message& msg) const {
  auto it = handlers_.find(event);
  if (it == handlers_.end()) {
    return Status::NotFound("no handler registered for event: " + event);
  }
  it->second(msg);
  return Status::Ok();
}

std::vector<std::string> HandlerRegistry::RegisteredEvents() const {
  return order_;
}

}  // namespace fedscope
