#include "fedscope/core/completeness.h"

#include <deque>
#include <sstream>

#include "fedscope/util/logging.h"

namespace fedscope {

constexpr char CompletenessChecker::kStart[];
constexpr char CompletenessChecker::kTermination[];

CompletenessChecker::CompletenessChecker() {
  nodes_.insert(kStart);
  nodes_.insert(kTermination);
}

void CompletenessChecker::AddEdge(const std::string& from,
                                  const std::string& to) {
  adjacency_[from].insert(to);
  nodes_.insert(from);
  nodes_.insert(to);
}

void CompletenessChecker::AddRegistry(const HandlerRegistry& registry) {
  for (const auto& [event, emits] : registry.Flows()) {
    nodes_.insert(event);
    for (const auto& emitted : emits) AddEdge(event, emitted);
  }
}

void CompletenessChecker::MarkEntry(const std::string& event) {
  AddEdge(kStart, event);
}

void CompletenessChecker::MarkTerminal(const std::string& event) {
  AddEdge(event, kTermination);
}

void CompletenessChecker::MarkOptional(const std::string& event) {
  optional_.insert(event);
}

CompletenessReport CompletenessChecker::Check() const {
  CompletenessReport report;
  // BFS from start.
  std::set<std::string> visited;
  std::deque<std::string> frontier{kStart};
  visited.insert(kStart);
  while (!frontier.empty()) {
    const std::string node = frontier.front();
    frontier.pop_front();
    auto it = adjacency_.find(node);
    if (it == adjacency_.end()) continue;
    for (const auto& next : it->second) {
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  report.complete = visited.count(kTermination) > 0;
  for (const auto& node : nodes_) {
    if (visited.count(node) > 0) {
      report.reachable.push_back(node);
    } else {
      report.unreachable.push_back(node);
    }
  }
  for (const auto& [from, targets] : adjacency_) {
    for (const auto& to : targets) report.edges.emplace_back(from, to);
  }
  for (const auto& node : report.unreachable) {
    if (optional_.count(node) > 0) continue;
    FS_LOG(Warning) << "completeness check: node '" << node
                    << "' is unreachable from start (redundant)";
  }
  if (!report.complete) {
    FS_LOG(Error) << "completeness check FAILED: no start-to-termination "
                     "path in the constructed FL course";
  }
  return report;
}

std::string CompletenessReport::ToString() const {
  std::ostringstream os;
  os << "complete=" << (complete ? "yes" : "NO") << "\nreachable:";
  for (const auto& node : reachable) os << " " << node;
  os << "\nredundant:";
  for (const auto& node : unreachable) os << " " << node;
  os << "\nedges:";
  for (const auto& [from, to] : edges) os << " " << from << "->" << to;
  os << "\n";
  return os.str();
}

}  // namespace fedscope
