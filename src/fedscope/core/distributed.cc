#include "fedscope/core/distributed.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "fedscope/core/events.h"
#include "fedscope/core/topology.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

double NowSeconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

// --------------------------------------------------------------------------
// EpochUplink
// --------------------------------------------------------------------------

Status EpochUplink::Open(const std::string& host, int port,
                         const TransportOptions& transport) {
  auto conn = TcpConnection::ConnectWithRetry(host, port, transport);
  if (!conn.ok()) return conn.status();
  connection_ = std::move(conn.value());
  return Status::Ok();
}

Status EpochUplink::Reopen(const std::string& host, int port,
                           const TransportOptions& transport) {
  connection_.Close();
  epoch_ = -1;
  return Open(host, port, transport);
}

void EpochUplink::Send(const Message& msg) {
  Message stamped = msg;
  stamped.timestamp = NowSeconds();
  // Echo the session epoch the server taught us; join_in goes out
  // unstamped (epoch unknown) and is exempt at the server's ingress.
  if (epoch_ >= 0) stamped.payload.SetInt(kSessionEpochKey, epoch_);
  if (obs_ != nullptr) obs_->OnChannelSend(stamped);
  Status status = connection_.SendMessage(stamped);
  if (!status.ok()) {
    FS_LOG(Warning) << "uplink send failed: " << status.ToString();
  }
}

// --------------------------------------------------------------------------
// DistributedServerHost
// --------------------------------------------------------------------------

/// CommChannel that writes outgoing messages to the receiver's socket.
class DistributedServerHost::Router : public CommChannel {
 public:
  explicit Router(DistributedServerHost* host) : host_(host) {}

  void Send(const Message& msg) override {
    if (msg.receiver == kServerId) {
      // Self-addressed messages (timers) are unsupported in distributed
      // mode; kAsyncTime is standalone-only.
      FS_LOG(Warning) << "dropping self-addressed message in distributed "
                         "mode: "
                      << MessageSummary(msg);
      return;
    }
    std::lock_guard<std::mutex> lock(host_->send_mu_);
    auto it = host_->connections_.find(msg.receiver);
    if (it == host_->connections_.end()) {
      FS_LOG(Warning) << "no connection for worker " << msg.receiver;
      return;
    }
    // The first finish broadcast marks course end. The flag must be set
    // before the bytes hit the wire: a client can receive finish and hang
    // up before the event loop regains control, and its EOF must already
    // read as orderly.
    if (msg.msg_type == events::kFinish) host_->course_finished_.store(true);
    Message stamped = msg;
    stamped.timestamp = NowSeconds();
    // Every outgoing message carries the session epoch; clients adopt it
    // and echo it, letting the ingress tell live traffic from messages
    // produced against a dead incarnation of the course.
    stamped.payload.SetInt(kSessionEpochKey, host_->session_epoch_);
    if (host_->obs_ != nullptr) host_->obs_->OnChannelSend(stamped);
    Status status = it->second.SendMessage(stamped);
    if (!status.ok()) {
      FS_LOG(Warning) << "send to worker " << msg.receiver
                      << " failed: " << status.ToString();
    }
  }

 private:
  DistributedServerHost* host_;
};

DistributedServerHost::DistributedServerHost(
    ServerOptions options, Model global_model,
    std::unique_ptr<Aggregator> aggregator, TcpListener listener,
    TransportOptions transport)
    : listener_(std::move(listener)),
      transport_(transport),
      router_(new Router(this)) {
  FS_CHECK(options.strategy != Strategy::kAsyncTime)
      << "kAsyncTime needs the standalone simulator's timer service";
  FS_CHECK_EQ(options.receive_deadline, 0.0)
      << "receive_deadline rides the standalone simulator's timer service; "
         "the distributed host detects failure through mid-course EOF";
  server_ = std::make_unique<Server>(std::move(options),
                                     std::move(global_model),
                                     std::move(aggregator), router_.get());
}

DistributedServerHost::~DistributedServerHost() {
  // Shutdown -> join -> close: readers may still be blocked in recv on
  // these descriptors (crash-path teardown); closing under them races
  // with kernel descriptor reuse.
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    for (auto& [id, conn] : connections_) conn.Shutdown();
  }
  for (auto& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  std::lock_guard<std::mutex> lock(send_mu_);
  for (auto& [id, conn] : connections_) conn.Close();
}

void DistributedServerHost::PushIncoming(Message msg) {
  std::lock_guard<std::mutex> lock(mu_);
  // Watchdog timers are wake signals, not course traffic: a standby
  // re-arms its watchdog with byte-identical frames (the suppressor would
  // eat the chain), and the deadline re-check they trigger is harmless
  // whatever incarnation produced them — exempt from both checks.
  const bool timer = msg.msg_type == events::kTimer;
  // Messages not authenticated to this incarnation's session epoch were
  // produced against a dead one (pre-crash retransmits, updates trained on
  // a pre-snapshot broadcast); reject them before the Server worker can
  // see them. join_in is exempt — it is how a client learns the epoch.
  if (!timer && msg.msg_type != events::kJoinIn &&
      msg.payload.GetInt(kSessionEpochKey, -1) != session_epoch_) {
    ++stale_epoch_rejected_;
    FS_LOG(Warning) << "rejected stale-epoch message (session epoch "
                    << session_epoch_ << "): " << MessageSummary(msg);
    return;
  }
  // At-least-once delivery makes retransmissions possible; suppress exact
  // repeats here so the Server worker never sees them. Root-addressed
  // traffic only: the per-sender suppressor assumes consecutive frames
  // from one sender differ, but a relaying aggregator fans byte-identical
  // model_para frames out to every client of its shard. Relayed repeats
  // are absorbed by the receiving workers' own idempotence instead (a
  // client not in the sub-cohort is ignored; replication is monotonic).
  if (!timer && msg.receiver == kServerId && dedup_.IsDuplicate(msg)) return;
  incoming_.push_back(std::move(msg));
  cv_.notify_one();
}

void DistributedServerHost::ReaderLoop(int worker_id,
                                       TcpConnection* connection) {
  // std::map nodes are stable, so the pointer captured at accept time
  // stays valid while later clients are still being inserted.
  while (true) {
    Result<Message> msg = connection->ReceiveMessage();
    if (!msg.ok()) {
      if (msg.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle between messages (recv_timeout), not a failure
      }
      const bool orderly = course_finished_.load();
      if (!orderly) {
        // Mid-course EOF/corruption: treat the worker as failed. Drop the
        // connection so the router stops addressing it, and report the
        // failure — to the Server worker for a client (the worker decides
        // how to degrade), as a standby wake for an edge aggregator; no
        // obs calls from this thread (MetricsRegistry is confined to the
        // event-loop thread).
        FS_LOG(Warning) << (IsAggregatorId(worker_id) ? "aggregator "
                                                      : "client ")
                        << worker_id
                        << " failed mid-course: " << msg.status().ToString();
        {
          std::lock_guard<std::mutex> lock(send_mu_);
          connections_.erase(worker_id);  // `connection` dangles hereafter
        }
        if (!IsAggregatorId(worker_id)) {
          Message failure;
          failure.sender = worker_id;
          failure.receiver = kServerId;
          failure.msg_type = events::kClientFailure;
          failure.timestamp = NowSeconds();
          // Host-synthesized, so authenticate it to the live epoch (the
          // ingress would otherwise reject it as stale).
          failure.payload.SetInt(kSessionEpochKey, session_epoch_);
          PushIncoming(std::move(failure));
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++eof_count_;
        if (!orderly) {
          if (IsAggregatorId(worker_id)) {
            ++failed_aggregators_;
          } else {
            ++failed_clients_;
          }
        }
        cv_.notify_one();
      }
      // Failover runs on this thread (the dead connection's reader has
      // nothing left to do) because it sleeps out the standby's deadline.
      if (!orderly && IsAggregatorId(worker_id)) {
        AggregatorFailover(worker_id);
      }
      return;
    }
    PushIncoming(std::move(msg.value()));
  }
}

void DistributedServerHost::AggregatorFailover(int aggregator_id) {
  const Topology& topology = server_->options().topology;
  const int shard = AggregatorShard(aggregator_id);
  const double eof_time = NowSeconds();
  // EOF is a definite death signal, but the standby's promotion guard
  // compares the hub-stamped wall clock against its staggered replication
  // deadline (failure_timeout × slot, DESIGN.md §11). Wait the target
  // slot's deadline out before waking it so one wake suffices; should a
  // late in-flight heartbeat still read as "alive", the worker re-arms
  // its watchdog through the hub until the deadline truly lapses.
  while (!course_finished_.load()) {
    int standby = -1;
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      for (int slot = 0; slot <= topology.standbys_per_shard; ++slot) {
        const int candidate = AggregatorId(shard, slot);
        if (candidate != aggregator_id &&
            connections_.find(candidate) != connections_.end()) {
          standby = candidate;
          break;
        }
      }
    }
    if (standby < 0) {
      FS_LOG(Error) << "aggregator " << aggregator_id << " (shard " << shard
                    << ") failed with no live standby; the shard's clients "
                       "are stranded";
      return;
    }
    const double wake_at =
        eof_time + topology.failure_timeout * AggregatorSlot(standby);
    const double wait = wake_at - NowSeconds();
    if (wait <= 0.0) {
      FS_LOG(Warning) << "shard " << shard << " lost aggregator "
                      << aggregator_id << "; waking standby " << standby;
      Message wake;
      wake.sender = standby;
      wake.receiver = standby;
      wake.msg_type = events::kTimer;
      wake.timestamp = NowSeconds();
      wake.payload.SetInt(kSessionEpochKey, session_epoch_);
      PushIncoming(std::move(wake));
      return;
    }
    // Re-scan while waiting: the chosen standby may itself die.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(wait, 0.05)));
  }
}

Status DistributedServerHost::RestoreFromCheckpoint(
    const Checkpoint& checkpoint) {
  FS_RETURN_IF_ERROR(server_->RestoreSnapshot(checkpoint));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (checkpoint.course.HasScalar("transport/dedup/count")) {
      FS_RETURN_IF_ERROR(
          dedup_.LoadState(checkpoint.course, "transport/dedup"));
    }
  }
  // Bump past the snapshot's epoch: every message the dead incarnation
  // produced (or that clients produced against it) is now stale.
  session_epoch_ = checkpoint.course.GetInt("transport/epoch", 0) + 1;
  if (obs_ != nullptr) obs_->Count("fs_recoveries_total");
  FS_LOG(Info) << "restored from snapshot: round " << server_->round()
               << ", session epoch " << session_epoch_;
  return Status::Ok();
}

void DistributedServerHost::WriteSnapshot() {
  Checkpoint snapshot;
  server_->ExportSnapshot(&snapshot);
  // Transport extras: what a restarted *host* needs beyond the worker.
  snapshot.course.SetInt("transport/epoch", session_epoch_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    dedup_.SaveState(&snapshot.course, "transport/dedup");
  }
  auto written = snapshot_writer_.Write(snapshot);
  if (!written.ok()) {
    FS_LOG(Warning) << "snapshot write failed: "
                    << written.status().ToString();
    return;
  }
  if (obs_ != nullptr) {
    obs_->Count("fs_snapshots_written_total");
    obs_->Count("fs_snapshot_bytes_total",
                static_cast<double>(written.value()));
    if (obs_->course_log != nullptr) {
      obs_->course_log->AnnotateSnapshot(written.value());
    }
  }
}

ServerStats DistributedServerHost::Run() {
  const int expected = server_->options().expected_clients;
  FS_CHECK_GT(expected, 0) << "set ServerOptions::expected_clients";
  const Topology& topology = server_->options().topology;
  const int aggregator_slots =
      topology.hierarchical()
          ? topology.num_shards * (topology.standbys_per_shard + 1)
          : 0;
  const int expected_connections = expected + aggregator_slots;

  // Phase 1: accept every participant. The first message on each
  // connection must be join_in, announcing the worker's id. Client joins
  // are delivered to the Server worker only once ALL connections are
  // registered: the last client join triggers the first broadcast, which
  // in hierarchical mode is addressed to edge aggregators — the router
  // drops messages whose connection has not been accepted yet.
  // Aggregator joins are a host-level handshake (which connection carries
  // which worker id) and are never delivered to the Server worker:
  // aggregators are infrastructure, not sampled participants.
  std::vector<Message> client_joins;
  client_joins.reserve(expected);
  for (int i = 0; i < expected_connections; ++i) {
    auto conn = listener_.Accept();
    FS_CHECK(conn.ok()) << conn.status().ToString();
    auto hello = conn->ReceiveMessage();
    FS_CHECK(hello.ok()) << hello.status().ToString();
    FS_CHECK_EQ(hello->msg_type, std::string(events::kJoinIn))
        << "first message must be join_in";
    const int id = hello->sender;
    FS_CHECK_GE(id, 1);
    if (IsAggregatorId(id)) {
      FS_CHECK_LT(AggregatorShard(id), topology.num_shards)
          << "aggregator " << id << " outside the configured topology";
      FS_CHECK_LE(AggregatorSlot(id), topology.standbys_per_shard)
          << "aggregator " << id << " outside the configured topology";
    }
    TcpConnection* connection = nullptr;
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      FS_CHECK(connections_.find(id) == connections_.end())
          << "duplicate worker id " << id;
      connection = &connections_.emplace(id, std::move(conn.value()))
                        .first->second;
      Status timeouts = connection->SetTimeouts(transport_.send_timeout,
                                                transport_.recv_timeout);
      if (!timeouts.ok()) {
        FS_LOG(Warning) << "timeouts for worker " << id
                        << " not applied: " << timeouts.ToString();
      }
    }
    readers_.emplace_back(
        [this, id, connection] { ReaderLoop(id, connection); });
    if (!IsAggregatorId(id)) client_joins.push_back(std::move(hello.value()));
  }
  for (Message& join : client_joins) {
    // Deliver the join to the server worker (triggers assign_id and,
    // on the last join, all_joined_in -> first broadcast). Record it in
    // the suppressor first so a retransmitted join_in is caught.
    join.timestamp = NowSeconds();
    {
      std::lock_guard<std::mutex> lock(mu_);
      dedup_.IsDuplicate(join);
    }
    server_->HandleMessage(join);
    if (server_->finished()) course_finished_.store(true);
  }

  // Phase 2: event loop until the course finishes and participants hang
  // up. Messages not addressed to the root worker are relayed to the
  // receiver's connection (hub duty): aggregator->client model relays,
  // client->aggregator updates, replication heartbeats, watchdog timers.
  int last_seen_round = server_->round();
  while (true) {
    Message msg;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(200), [&] {
        return !incoming_.empty() ||
               (server_->finished() && eof_count_ >= expected_connections);
      });
      if (incoming_.empty()) {
        if (server_->finished() && eof_count_ >= expected_connections) break;
        continue;
      }
      msg = std::move(incoming_.front());
      incoming_.pop_front();
    }
    if (msg.receiver != kServerId) {
      router_->Send(msg);  // re-stamps wall time + live session epoch
      continue;
    }
    msg.timestamp = NowSeconds();
    server_->HandleMessage(msg);
    if (server_->finished()) course_finished_.store(true);
    if (server_->round() != last_seen_round) {
      last_seen_round = server_->round();
      if (snapshot_writer_.enabled() &&
          snapshot_writer_.ShouldSnapshot(last_seen_round)) {
        WriteSnapshot();
      }
      // Simulated crash (tests/CI): die abruptly — no finish broadcast;
      // connections drop in the destructor, clients see mid-course EOF.
      if (halt_after_round_ > 0 && last_seen_round >= halt_after_round_) {
        FS_LOG(Warning) << "halting after round " << last_seen_round
                        << " (simulated crash)";
        return server_->stats();
      }
    }
  }
  // Obs sinks are confined to this thread; flush ingress counters that
  // reader threads accumulated under the lock.
  if (obs_ != nullptr) {
    int64_t stale = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stale = stale_epoch_rejected_;
    }
    if (stale > 0) {
      obs_->Count("fs_stale_epoch_rejected_total",
                  static_cast<double>(stale));
    }
  }
  return server_->stats();
}

// --------------------------------------------------------------------------
// DistributedClientHost
// --------------------------------------------------------------------------

void DistributedClientHost::set_obs(const ObsContext* obs) {
  uplink_->set_obs(obs);
  client_->set_obs(obs);
}

DistributedClientHost::DistributedClientHost(
    int client_id, ClientOptions options, Model model, SplitDataset data,
    std::unique_ptr<BaseTrainer> trainer, const std::string& server_host,
    int server_port, TransportOptions transport)
    : client_id_(client_id),
      server_host_(server_host),
      server_port_(server_port),
      transport_(transport),
      uplink_(new EpochUplink()) {
  connect_status_ = uplink_->Open(server_host, server_port, transport);
  client_ = std::make_unique<Client>(client_id, std::move(options),
                                     std::move(model), std::move(data),
                                     std::move(trainer), uplink_.get());
}

DistributedClientHost::~DistributedClientHost() = default;

Status DistributedClientHost::Run() {
  FS_RETURN_IF_ERROR(connect_status_);
  client_->JoinIn();
  int rejoins_left = transport_.rejoin_attempts;
  while (!client_->finished()) {
    auto msg = uplink_->Receive();
    if (!msg.ok()) {
      if (msg.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle between rounds (recv_timeout), keep waiting
      }
      if (rejoins_left <= 0) {
        uplink_->Close();
        return msg.status();
      }
      // Mid-course connection loss: assume a server crash + restart from
      // snapshot (DESIGN.md §10). Reconnect with the seeded backoff and
      // re-join; the restarted server re-acks this client and, if it was
      // mid-round at the snapshot, re-broadcasts the model. Any update
      // trained against the dead incarnation is abandoned — the new
      // incarnation would reject it as stale-epoch anyway.
      --rejoins_left;
      ++rejoins_;
      FS_LOG(Warning) << "client " << client_id_ << " lost server ("
                      << msg.status().ToString() << "); re-joining";
      Status reopened =
          uplink_->Reopen(server_host_, server_port_, transport_);
      if (!reopened.ok()) {
        uplink_->Close();
        return reopened;
      }
      client_->JoinIn();
      continue;
    }
    // Adopt the session epoch the server stamps on every message before
    // handling it, so replies authenticate to the epoch they answer.
    if (msg->payload.HasScalar(kSessionEpochKey)) {
      uplink_->set_epoch(msg->payload.GetInt(kSessionEpochKey));
    }
    client_->HandleMessage(*msg);
  }
  uplink_->Close();
  return Status::Ok();
}

}  // namespace fedscope
