// Server course-snapshot export/restore (DESIGN.md §10). Kept out of
// server.cc so the behaviour handlers stay readable; everything here is
// plain state copying through the wire-codec Payload schema below.
//
// Schema (all keys inside Checkpoint::course):
//   strategy, seed, expected_clients        identity guard
//   started, finished, sampled_this_round,
//   extensions_this_round, restaffs_this_round,
//   evals_since_best, last_eval_loss        progress scalars
//   rng                                     packed u64 words (Rng::SaveState)
//   clients, busy/ids, busy/rounds,
//   resp_scores                             membership
//   buffer/count, buffer/<i>/...            pending cohort incl. deltas
//   sampler/..., aggregator/...             plug-in state (their SaveState)
//   stats/...                               full ServerStats
//   obs/...                                 pending per-round accumulators

#include "fedscope/core/checkpoint.h"
#include "fedscope/core/server.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

constexpr char kBufferPrefix[] = "buffer/";

std::string BufferKey(int64_t i, const char* field) {
  return kBufferPrefix + std::to_string(i) + "/" + field;
}

}  // namespace

void Server::ExportSnapshot(Checkpoint* checkpoint) {
  checkpoint->round = round_;
  checkpoint->virtual_time = current_time_;
  checkpoint->best_accuracy = stats_.best_accuracy;
  checkpoint->global_state = global_model_.GetStateDict();

  Payload p;
  p.SetInt("strategy", static_cast<int64_t>(options_.strategy));
  p.SetInt("seed", static_cast<int64_t>(options_.seed));
  p.SetInt("expected_clients", options_.expected_clients);

  p.SetInt("started", started_ ? 1 : 0);
  p.SetInt("finished", finished_ ? 1 : 0);
  p.SetInt("sampled_this_round", sampled_this_round_);
  p.SetInt("extensions_this_round", extensions_this_round_);
  p.SetInt("restaffs_this_round", restaffs_this_round_);
  p.SetInt("evals_since_best", evals_since_best_);
  p.SetDouble("last_eval_loss", last_eval_loss_);

  SetPackedU64s(&p, "rng", rng_.SaveState());

  SetPackedInt64s(&p, "clients",
                  std::vector<int64_t>(clients_.begin(), clients_.end()));
  std::vector<int64_t> busy_ids, busy_rounds;
  busy_ids.reserve(busy_.size());
  busy_rounds.reserve(busy_.size());
  for (const auto& [id, r] : busy_) {
    busy_ids.push_back(id);
    busy_rounds.push_back(r);
  }
  SetPackedInt64s(&p, "busy/ids", busy_ids);
  SetPackedInt64s(&p, "busy/rounds", busy_rounds);
  SetPackedDoubles(&p, "resp_scores", resp_scores_);

  p.SetInt("buffer/count", static_cast<int64_t>(buffer_.size()));
  for (int64_t i = 0; i < static_cast<int64_t>(buffer_.size()); ++i) {
    const ClientUpdate& u = buffer_[i];
    p.SetInt(BufferKey(i, "client_id"), u.client_id);
    p.SetInt(BufferKey(i, "round_started"), u.round_started);
    p.SetInt(BufferKey(i, "staleness"), u.staleness);
    p.SetDouble(BufferKey(i, "num_samples"), u.num_samples);
    p.SetInt(BufferKey(i, "local_steps"), u.local_steps);
    p.SetInt(BufferKey(i, "delta_params"),
             static_cast<int64_t>(u.delta.size()));
    p.SetStateDict(BufferKey(i, "delta"), u.delta);
  }

  // Topology keys exist only for hierarchical courses, keeping flat
  // snapshots byte-identical to the pre-topology schema.
  if (options_.topology.hierarchical()) {
    SetPackedInt64s(&p, "topology/shard_epochs", shard_epochs_);
    SetPackedInt64s(&p, "topology/active_slots",
                    std::vector<int64_t>(shard_active_slot_.begin(),
                                         shard_active_slot_.end()));
    p.SetInt("topology/covered_this_round", covered_this_round_);
    for (int64_t i = 0; i < static_cast<int64_t>(buffer_.size()); ++i) {
      SetPackedInt64s(&p, BufferKey(i, "contributors"),
                      std::vector<int64_t>(buffer_contributors_[i].begin(),
                                           buffer_contributors_[i].end()));
    }
    p.SetInt("stats/shard_failovers", stats_.shard_failovers);
    p.SetInt("stats/stale_partials", stats_.stale_partials);
    p.SetInt("obs/pending_partials", pending_partials_);
    p.SetInt("obs/pending_failovers", pending_failovers_);
  }

  // Guard keys exist only for guarded courses, keeping guard-off
  // snapshots byte-identical to the pre-guard schema. Quarantined members
  // need no membership key: they are gaps in `clients`, which restore
  // already rebuilds into removed_.
  if (guard_ != nullptr) {
    guard_->SaveState(&p, "guard");
    p.SetInt("stats/updates_rejected", stats_.updates_rejected);
    p.SetInt("stats/updates_clipped", stats_.updates_clipped);
    SetPackedInt64s(&p, "stats/quarantined",
                    std::vector<int64_t>(stats_.quarantined.begin(),
                                         stats_.quarantined.end()));
    p.SetInt("obs/pending_rejected", pending_rejected_);
    p.SetInt("obs/pending_quarantined", pending_quarantined_);
  }

  if (sampler_) {
    p.SetInt("has_sampler", 1);
    sampler_->SaveState(&p, "sampler");
  }
  aggregator_->SaveState(&p, "aggregator");

  std::vector<double> curve_times, curve_accs;
  curve_times.reserve(stats_.curve.size());
  curve_accs.reserve(stats_.curve.size());
  for (const auto& [t, acc] : stats_.curve) {
    curve_times.push_back(t);
    curve_accs.push_back(acc);
  }
  SetPackedDoubles(&p, "stats/curve_times", curve_times);
  SetPackedDoubles(&p, "stats/curve_accs", curve_accs);
  SetPackedInt64s(&p, "stats/agg_count", stats_.agg_count);
  SetPackedInt64s(&p, "stats/staleness_log",
                  std::vector<int64_t>(stats_.staleness_log.begin(),
                                       stats_.staleness_log.end()));
  p.SetInt("stats/dropped_stale", stats_.dropped_stale);
  p.SetInt("stats/declined", stats_.declined);
  p.SetInt("stats/dropouts", stats_.dropouts);
  p.SetInt("stats/replacements", stats_.replacements);
  p.SetInt("stats/round_extensions", stats_.round_extensions);
  p.SetInt("stats/aborted", stats_.aborted ? 1 : 0);
  std::vector<int64_t> metric_ids;
  std::vector<double> metric_values;
  for (const auto& [id, acc] : stats_.client_metrics) {
    metric_ids.push_back(id);
    metric_values.push_back(acc);
  }
  SetPackedInt64s(&p, "stats/client_metric_ids", metric_ids);
  SetPackedDoubles(&p, "stats/client_metric_values", metric_values);
  p.SetInt("stats/rounds", stats_.rounds);
  p.SetInt("stats/reached_target", stats_.reached_target ? 1 : 0);
  p.SetDouble("stats/time_to_target", stats_.time_to_target);
  p.SetDouble("stats/best_accuracy", stats_.best_accuracy);
  p.SetDouble("stats/final_accuracy", stats_.final_accuracy);
  p.SetDouble("stats/finish_time", stats_.finish_time);

  p.SetDouble("obs/last_agg_time", last_agg_time_);
  p.SetInt("obs/pending_uplink_bytes", pending_uplink_bytes_);
  p.SetInt("obs/pending_downlink_bytes", pending_downlink_bytes_);
  p.SetInt("obs/pending_broadcasts", pending_broadcasts_);
  p.SetInt("obs/pending_dropped", pending_dropped_);
  p.SetInt("obs/pending_declined", pending_declined_);
  p.SetInt("obs/pending_dropouts", pending_dropouts_);
  p.SetInt("obs/pending_replacements", pending_replacements_);

  checkpoint->course = std::move(p);
}

Status Server::RestoreSnapshot(const Checkpoint& checkpoint) {
  const Payload& p = checkpoint.course;
  if (!p.HasScalar("rng")) {
    return Status::FailedPrecondition(
        "checkpoint has no course section (model-only / v1 checkpoint)");
  }
  if (p.GetInt("strategy", -1) != static_cast<int64_t>(options_.strategy)) {
    return Status::FailedPrecondition(
        "snapshot strategy does not match server options");
  }
  if (p.GetInt("seed", -1) != static_cast<int64_t>(options_.seed)) {
    return Status::FailedPrecondition(
        "snapshot seed does not match server options");
  }
  Status model_status =
      global_model_.LoadStateDict(checkpoint.global_state, /*strict=*/true);
  if (!model_status.ok()) return model_status;

  round_ = checkpoint.round;
  current_time_ = checkpoint.virtual_time;
  started_ = p.GetInt("started") != 0;
  finished_ = p.GetInt("finished") != 0;
  sampled_this_round_ = static_cast<int>(p.GetInt("sampled_this_round"));
  extensions_this_round_ = static_cast<int>(p.GetInt("extensions_this_round"));
  restaffs_this_round_ = static_cast<int>(p.GetInt("restaffs_this_round"));
  evals_since_best_ = static_cast<int>(p.GetInt("evals_since_best"));
  last_eval_loss_ = p.GetDouble("last_eval_loss");

  Status rng_status = rng_.LoadState(GetPackedU64s(p, "rng"));
  if (!rng_status.ok()) return rng_status;

  clients_.clear();
  for (int64_t id : GetPackedInt64s(p, "clients")) {
    clients_.insert(static_cast<int>(id));
  }
  // Dense-membership bookkeeping is not part of the schema: rebuild it as
  // "every gap below the largest member was removed". When membership was
  // in fact sparse this over-marks, but the resulting candidate set —
  // range minus removed_ minus busy_ — still equals clients_ minus busy_,
  // and SampleIdle's two paths consume the rng identically either way.
  max_joined_ = clients_.empty() ? 0 : *clients_.rbegin();
  removed_.clear();
  if (max_joined_ > 0 && *clients_.begin() >= 1) {
    int expect = 1;
    for (int id : clients_) {
      for (; expect < id; ++expect) removed_.insert(expect);
      expect = id + 1;
    }
  } else {
    max_joined_ = 0;  // out-of-range ids: keep the enumeration fallback
  }
  const std::vector<int64_t> busy_ids = GetPackedInt64s(p, "busy/ids");
  const std::vector<int64_t> busy_rounds = GetPackedInt64s(p, "busy/rounds");
  if (busy_ids.size() != busy_rounds.size()) {
    return Status::DataLoss("snapshot busy id/round length mismatch");
  }
  busy_.clear();
  for (size_t i = 0; i < busy_ids.size(); ++i) {
    busy_[static_cast<int>(busy_ids[i])] = static_cast<int>(busy_rounds[i]);
  }
  resp_scores_ = GetPackedDoubles(p, "resp_scores");

  const int64_t buffer_count = p.GetInt("buffer/count");
  buffer_.clear();
  buffer_contributors_.clear();
  buffer_.reserve(buffer_count);
  for (int64_t i = 0; i < buffer_count; ++i) {
    ClientUpdate u;
    u.client_id = static_cast<int>(p.GetInt(BufferKey(i, "client_id")));
    u.round_started = static_cast<int>(p.GetInt(BufferKey(i, "round_started")));
    u.staleness = static_cast<int>(p.GetInt(BufferKey(i, "staleness")));
    u.num_samples = p.GetDouble(BufferKey(i, "num_samples"));
    u.local_steps = static_cast<int>(p.GetInt(BufferKey(i, "local_steps")));
    u.delta = p.GetStateDict(BufferKey(i, "delta"));
    if (static_cast<int64_t>(u.delta.size()) !=
        p.GetInt(BufferKey(i, "delta_params"))) {
      return Status::DataLoss("snapshot buffered delta is incomplete");
    }
    buffer_.push_back(std::move(u));
    if (options_.topology.hierarchical()) {
      std::vector<int> contributors;
      for (int64_t id : GetPackedInt64s(p, BufferKey(i, "contributors"))) {
        contributors.push_back(static_cast<int>(id));
      }
      buffer_contributors_.push_back(std::move(contributors));
    }
  }

  covered_this_round_ = 0;
  if (options_.topology.hierarchical()) {
    const std::vector<int64_t> epochs =
        GetPackedInt64s(p, "topology/shard_epochs");
    const std::vector<int64_t> slots =
        GetPackedInt64s(p, "topology/active_slots");
    if (static_cast<int>(epochs.size()) != options_.topology.num_shards ||
        static_cast<int>(slots.size()) != options_.topology.num_shards) {
      return Status::FailedPrecondition(
          "snapshot shard layout does not match server topology");
    }
    shard_epochs_ = epochs;
    for (int shard = 0; shard < options_.topology.num_shards; ++shard) {
      shard_active_slot_[shard] = static_cast<int>(slots[shard]);
    }
    covered_this_round_ =
        static_cast<int>(p.GetInt("topology/covered_this_round"));
  }

  // The sampler object is reconstructed from options + scores (fixed after
  // course start); only its mutable cursor rides in the snapshot.
  if (p.GetInt("has_sampler") != 0) {
    sampler_ = MakeSampler(options_.sampler, resp_scores_,
                           options_.num_groups);
    sampler_->LoadState(p, "sampler");
  } else {
    sampler_.reset();
  }
  aggregator_->LoadState(p, "aggregator");

  const std::vector<double> curve_times =
      GetPackedDoubles(p, "stats/curve_times");
  const std::vector<double> curve_accs =
      GetPackedDoubles(p, "stats/curve_accs");
  if (curve_times.size() != curve_accs.size()) {
    return Status::DataLoss("snapshot accuracy curve length mismatch");
  }
  stats_ = ServerStats();
  for (size_t i = 0; i < curve_times.size(); ++i) {
    stats_.curve.emplace_back(curve_times[i], curve_accs[i]);
  }
  stats_.agg_count = GetPackedInt64s(p, "stats/agg_count");
  for (int64_t s : GetPackedInt64s(p, "stats/staleness_log")) {
    stats_.staleness_log.push_back(static_cast<int>(s));
  }
  stats_.dropped_stale = p.GetInt("stats/dropped_stale");
  stats_.declined = p.GetInt("stats/declined");
  stats_.dropouts = p.GetInt("stats/dropouts");
  stats_.replacements = p.GetInt("stats/replacements");
  stats_.round_extensions = p.GetInt("stats/round_extensions");
  stats_.aborted = p.GetInt("stats/aborted") != 0;
  const std::vector<int64_t> metric_ids =
      GetPackedInt64s(p, "stats/client_metric_ids");
  const std::vector<double> metric_values =
      GetPackedDoubles(p, "stats/client_metric_values");
  if (metric_ids.size() != metric_values.size()) {
    return Status::DataLoss("snapshot client metrics length mismatch");
  }
  for (size_t i = 0; i < metric_ids.size(); ++i) {
    stats_.client_metrics[static_cast<int>(metric_ids[i])] = metric_values[i];
  }
  stats_.rounds = static_cast<int>(p.GetInt("stats/rounds"));
  stats_.reached_target = p.GetInt("stats/reached_target") != 0;
  stats_.time_to_target = p.GetDouble("stats/time_to_target");
  stats_.best_accuracy = p.GetDouble("stats/best_accuracy");
  stats_.final_accuracy = p.GetDouble("stats/final_accuracy");
  stats_.finish_time = p.GetDouble("stats/finish_time");

  if (options_.topology.hierarchical()) {
    stats_.shard_failovers = p.GetInt("stats/shard_failovers");
    stats_.stale_partials = p.GetInt("stats/stale_partials");
  }

  if (guard_ != nullptr) {
    guard_->LoadState(p, "guard");
    stats_.updates_rejected = p.GetInt("stats/updates_rejected");
    stats_.updates_clipped = p.GetInt("stats/updates_clipped");
    stats_.quarantined.clear();
    for (int64_t id : GetPackedInt64s(p, "stats/quarantined")) {
      stats_.quarantined.push_back(static_cast<int>(id));
    }
    pending_rejected_ = p.GetInt("obs/pending_rejected");
    pending_quarantined_ = p.GetInt("obs/pending_quarantined");
  }

  last_agg_time_ = p.GetDouble("obs/last_agg_time");
  pending_uplink_bytes_ = p.GetInt("obs/pending_uplink_bytes");
  pending_downlink_bytes_ = p.GetInt("obs/pending_downlink_bytes");
  pending_broadcasts_ = static_cast<int>(p.GetInt("obs/pending_broadcasts"));
  pending_dropped_ = p.GetInt("obs/pending_dropped");
  pending_declined_ = p.GetInt("obs/pending_declined");
  pending_dropouts_ = p.GetInt("obs/pending_dropouts");
  pending_replacements_ = p.GetInt("obs/pending_replacements");
  pending_partials_ = p.GetInt("obs/pending_partials");
  pending_failovers_ = p.GetInt("obs/pending_failovers");
  return Status::Ok();
}

}  // namespace fedscope
