#ifndef FEDSCOPE_CORE_SAMPLER_H_
#define FEDSCOPE_CORE_SAMPLER_H_

#include <memory>
#include <string>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// An ascending candidate id set represented implicitly as the dense range
/// [1, population] minus a small sorted exclusion list. Lets samplers draw
/// from cross-device-scale populations in O(|excluded|) memory instead of
/// materializing the id vector (DESIGN.md §13). `excluded` must be strictly
/// ascending and within [1, population].
class CandidateView {
 public:
  CandidateView(int population, std::vector<int> excluded);

  /// Number of candidate ids.
  int size() const {
    return population_ - static_cast<int>(excluded_.size());
  }
  /// The idx-th smallest candidate id (idx in [0, size())).
  int IdAt(int idx) const;
  /// The explicit ascending id vector (for samplers without a sparse path).
  std::vector<int> Materialize() const;

 private:
  int population_;
  std::vector<int> excluded_;
};

/// Client sampling strategies (paper §3.3.1-ii). Candidates are the ids of
/// currently *idle* clients; the sampler returns up to `k` of them.
class Sampler {
 public:
  virtual ~Sampler() = default;
  virtual std::string Name() const = 0;
  virtual std::vector<int> Sample(const std::vector<int>& candidates, int k,
                                  Rng* rng) = 0;

  /// Samples from an implicit candidate set. Must be bit-identical to
  /// Sample(view.Materialize(), k, rng); the base implementation does
  /// exactly that, and samplers with a sparse path (uniform) override it to
  /// avoid the O(population) materialization.
  virtual std::vector<int> SampleIds(const CandidateView& view, int k,
                                     Rng* rng) {
    return Sample(view.Materialize(), k, rng);
  }

  /// Persists sampler-internal course state into `p` under `prefix` (crash
  /// snapshots, DESIGN.md §10). Construction-time inputs (scores, groups)
  /// are rebuilt from ServerOptions on restore and are not written here.
  virtual void SaveState(Payload* /*p*/, const std::string& /*prefix*/) const {}
  /// Restores state written by SaveState onto a freshly built sampler.
  virtual void LoadState(const Payload& /*p*/,
                         const std::string& /*prefix*/) {}
};

/// Uniform sampling without replacement (vanilla FedAvg).
class UniformSampler : public Sampler {
 public:
  std::string Name() const override { return "uniform"; }
  std::vector<int> Sample(const std::vector<int>& candidates, int k,
                          Rng* rng) override;
  /// O(k) draw straight from the implicit id range: consumes the same rng
  /// sequence as the materialized path, so the cohort is bit-identical.
  std::vector<int> SampleIds(const CandidateView& view, int k,
                             Rng* rng) override;
};

/// Responsiveness-related sampling: inclusion probability proportional to
/// score^exponent, where the score is a prior per-client responsiveness
/// estimate (from device info or historical responses). exponent > 0
/// favors fast clients (efficiency: fewer staled updates); exponent < 0
/// favors slow clients (fairness: compensates for the staleness discount
/// their contributions suffer — the bias-CIFAR remedy of Appendix I).
/// Sampling is without replacement via successive weighted draws.
class ResponsivenessSampler : public Sampler {
 public:
  explicit ResponsivenessSampler(std::vector<double> scores,
                                 double exponent = 1.0)
      : scores_(std::move(scores)), exponent_(exponent) {}
  std::string Name() const override { return "responsiveness"; }
  std::vector<int> Sample(const std::vector<int>& candidates, int k,
                          Rng* rng) override;

 private:
  std::vector<double> scores_;  // indexed by client id - 1
  double exponent_;
};

/// Group sampling: clients with similar responsiveness are grouped; each
/// call samples uniformly *within* one group, cycling through groups round-
/// robin, so every round's cohort has homogeneous speed (limiting staleness
/// spread). Falls back to other groups when the chosen group has too few
/// idle members.
class GroupSampler : public Sampler {
 public:
  explicit GroupSampler(std::vector<std::vector<int>> groups);
  std::string Name() const override { return "group"; }
  std::vector<int> Sample(const std::vector<int>& candidates, int k,
                          Rng* rng) override;
  void SaveState(Payload* p, const std::string& prefix) const override;
  void LoadState(const Payload& p, const std::string& prefix) override;

 private:
  std::vector<std::vector<int>> groups_;
  std::vector<int> group_of_;  // client id -> group index
  size_t next_group_ = 0;
};

/// Factory by name:
///   "uniform" | "responsiveness" (p ~ score) |
///   "responsiveness_inv" (p ~ 1/score) | "group".
std::unique_ptr<Sampler> MakeSampler(const std::string& name,
                                     const std::vector<double>& scores,
                                     int num_groups);

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_SAMPLER_H_
