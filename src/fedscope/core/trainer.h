#ifndef FEDSCOPE_CORE_TRAINER_H_
#define FEDSCOPE_CORE_TRAINER_H_

#include <memory>
#include <string>

#include "fedscope/comm/message.h"
#include "fedscope/data/dataset.h"
#include "fedscope/nn/loss.h"
#include "fedscope/nn/model.h"
#include "fedscope/nn/optimizer.h"
#include "fedscope/util/config.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// Local-training hyperparameters. Mirrors the client-side knobs of the
/// paper's experiments (§5.2 / Appendix F): Q local SGD steps of a given
/// batch size at learning rate eta, plus optional regularization.
/// `prox_mu` enables FedProx-style proximal local training.
struct TrainConfig {
  double lr = 0.5;
  int local_steps = 4;
  int batch_size = 20;
  double momentum = 0.0;
  double weight_decay = 0.0;
  double prox_mu = 0.0;
  double grad_clip = 0.0;

  /// Reads overrides from a dotted-key config (train.lr, train.steps, ...).
  static TrainConfig FromConfig(const Config& config);
  static TrainConfig FromConfig(const Config& config, TrainConfig base);
};

struct TrainResult {
  double mean_loss = 0.0;
  int64_t num_samples = 0;  // examples processed (steps * batch)
  int local_steps = 0;
};

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
  int64_t num_examples = 0;
};

/// Encapsulates the local training / evaluation of one client, decoupled
/// from the client's message-handling behaviour (paper §3.6, Figure 5).
/// Personalized algorithms (Ditto/pFedMe/FedEM, §3.4.1) subclass this and
/// keep their per-client state inside the trainer.
///
/// Must-do interfaces (paper: "train, evaluation, update model"): Train and
/// Evaluate. UpdateModel has a sensible default (load the shared state).
class BaseTrainer {
 public:
  virtual ~BaseTrainer() = default;

  /// Incorporates a received global (shared) state into the local model.
  /// Default behaviour: overwrite matching parameters.
  virtual void UpdateModel(Model* model, const StateDict& global_shared);

  /// Runs local training, mutating `model`. Must be implemented.
  virtual TrainResult Train(Model* model, const Dataset& train,
                            const TrainConfig& config, Rng* rng) = 0;

  /// Evaluates the *deployment* model on `data`. For personalized trainers
  /// this is the personalized model, not the shared one.
  virtual EvalResult Evaluate(Model* model, const Dataset& data);

  /// The state this client shares with the federation, after applying the
  /// share filter. Default: the model's filtered state dict. Trainers with
  /// internal state (e.g. FedEM's mixture components) override this.
  virtual StateDict GetShareableState(Model* model, const NameFilter& filter);

  /// Persists trainer-internal per-client state (personalized models,
  /// mixture weights) into `p` under `prefix`, so a reclaimed virtual
  /// client re-instantiates bit-identically (DESIGN.md §13). Stateless
  /// trainers keep the default no-op.
  virtual void SaveState(Payload* /*p*/, const std::string& /*prefix*/) {
  }
  /// Restores state written by SaveState onto a freshly built trainer.
  /// `reference` is the owning client's model — the architecture template
  /// for reconstructing personalized model copies.
  virtual void LoadState(const Payload& /*p*/, const std::string& /*prefix*/,
                         const Model& /*reference*/) {}
};

/// Plain local SGD on softmax cross-entropy — the Trainer of vanilla
/// FedAvg. Batches are sampled with replacement from the local train set.
class GeneralTrainer : public BaseTrainer {
 public:
  TrainResult Train(Model* model, const Dataset& train,
                    const TrainConfig& config, Rng* rng) override;
};

/// Shared helpers ------------------------------------------------------------

/// One SGD step on a batch; returns the batch loss.
double SgdStepOnBatch(Model* model, Sgd* optimizer, const Tensor& x,
                      const std::vector<int64_t>& labels);

/// Cross-entropy evaluation used by all built-in trainers.
EvalResult EvaluateClassifier(Model* model, const Dataset& data);

/// Draws `batch_size` example indices with replacement.
std::vector<int64_t> SampleBatchIndices(int64_t dataset_size,
                                        int batch_size, Rng* rng);

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_TRAINER_H_
