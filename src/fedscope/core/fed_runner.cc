#include "fedscope/core/fed_runner.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "fedscope/comm/codec.h"
#include "fedscope/core/events.h"
#include "fedscope/util/logging.h"

namespace fedscope {

FedRunner::FedRunner(FedJob job) : job_(std::move(job)) {
  FS_CHECK(job_.virtualize || job_.provider == nullptr)
      << "FedJob::provider requires FedJob::virtualize";
  if (job_.virtualize) {
    if (job_.provider == nullptr) {
      FS_CHECK(job_.data != nullptr);
      owned_provider_ = std::make_unique<EagerDataProvider>(job_.data);
      job_.provider = owned_provider_.get();
    }
    provider_ = job_.provider;
    population_ = provider_->num_clients();
  } else {
    FS_CHECK(job_.data != nullptr);
    population_ = job_.data->num_clients();
  }
  FS_CHECK_GT(population_, 0);
  BuildWorkers();
}

Client* FedRunner::client(int id) {
  FS_CHECK_GE(id, 1);
  FS_CHECK_LE(id, population_);
  if (cache_ != nullptr) {
    Client* live = cache_->Get(id);
    cache_->Trim();  // `live` survives: Get marked it most recently used
    return live;
  }
  return clients_[id - 1].get();
}

EdgeAggregator* FedRunner::aggregator(int shard, int slot) {
  auto it = aggregator_index_.find(AggregatorId(shard, slot));
  return it == aggregator_index_.end() ? nullptr
                                       : aggregators_[it->second].get();
}

void FedRunner::BuildWorkers() {
  const int n = population_;

  // Virtualized courses keep an empty fleet empty (a homogeneous default
  // profile per id) rather than allocating one entry per descriptor.
  if (job_.fleet.empty() && !job_.virtualize) {
    job_.fleet.assign(n, DeviceProfile{});
  }
  if (!job_.fleet.empty()) {
    FS_CHECK_EQ(static_cast<int>(job_.fleet.size()), n);
  }

  if (!job_.trainer_factory) {
    job_.trainer_factory = [](int) { return std::make_unique<GeneralTrainer>(); };
  }
  if (!job_.aggregator_factory) {
    const double rho = job_.staleness_rho;
    job_.aggregator_factory = [rho]() {
      return std::make_unique<FedAvgAggregator>(FedAvgOptions{1.0, rho});
    };
  }

  fault_plan_ = FaultPlan(job_.fault, n);
  CommChannel* channel = this;
  if (fault_plan_.enabled()) {
    // Workers are wired to the fault decorator instead of the queue; the
    // workers themselves stay unchanged (architecture invariant).
    fault_channel_ =
        std::make_unique<FaultInjectingChannel>(this, &fault_plan_);
    channel = fault_channel_.get();
  }
  if (job_.send_tap) {
    // The tap sits between the workers and the fault decorator so it sees
    // every send as the worker issued it, before faults alter or drop it.
    tap_channel_ = std::make_unique<TapChannel>(channel, &job_.send_tap);
    channel = tap_channel_.get();
  }

  worker_channel_ = channel;
  server_ = MakeServer();
  snapshot_writer_ = SnapshotWriter(job_.snapshot);

  // Hierarchical topology: one EdgeAggregator per shard × slot, wired to
  // the same decorated channel as every other worker (transport and
  // behaviour stay decoupled).
  aggregators_.clear();
  aggregator_index_.clear();
  dead_aggregators_.clear();
  shard_writers_.clear();
  const Topology& topo = job_.server.topology;
  if (topo.hierarchical()) {
    for (int shard = 0; shard < topo.num_shards; ++shard) {
      for (int slot = 0; slot <= topo.standbys_per_shard; ++slot) {
        EdgeAggregatorOptions options;
        options.topology = topo;
        options.shard = shard;
        options.slot = slot;
        options.guard = job_.server.guard;
        aggregator_index_[AggregatorId(shard, slot)] = aggregators_.size();
        aggregators_.push_back(
            std::make_unique<EdgeAggregator>(options, channel));
      }
    }
    shard_forwarded_.assign(topo.num_shards, 0);
    for (int shard = 0; shard < topo.num_shards; ++shard) {
      SnapshotPolicy policy = job_.snapshot;
      policy.worker_prefix += "s" + std::to_string(shard) + "-";
      shard_writers_.emplace_back(std::move(policy));
    }
  }

  clients_.clear();
  ports_.clear();
  cache_.reset();
  const bool threaded = job_.exec.backend == ExecutionBackend::kThreaded;
  if (job_.virtualize) {
    cache_ = std::make_unique<ClientCache>(
        population_, CacheCapacity(),
        [this](int id) { return MakeCacheEntry(id); });
  } else {
    clients_.reserve(n);
    for (int i = 0; i < n; ++i) {
      const int id = i + 1;
      CommChannel* client_channel = channel;
      if (threaded) {
        // A pass-through port per client; the parallel stage opens capture
        // windows on it so a task's sends drain at commit, not mid-task.
        ports_.push_back(std::make_unique<BufferingChannel>(channel));
        client_channel = ports_.back().get();
      }
      clients_.push_back(std::make_unique<Client>(
          id, DeriveClientOptions(id), job_.init_model, job_.data->clients[i],
          job_.trainer_factory(id), client_channel));
    }
  }

  if (job_.obs.enabled()) {
    queue_.set_obs(&job_.obs);
    server_->set_obs(&job_.obs);
    for (auto& client : clients_) client->set_obs(&job_.obs);
    for (auto& agg : aggregators_) agg->set_obs(&job_.obs);
    if (fault_channel_ != nullptr) fault_channel_->set_obs(&job_.obs);
  }
}

ClientOptions FedRunner::DeriveClientOptions(int id) const {
  ClientOptions options = job_.client;
  options.device =
      job_.fleet.empty() ? DeviceProfile{} : job_.fleet[id - 1];
  // Same stream as a one-pass `seeder.Fork(1..n)` sweep: Fork is const and
  // keyed on the id, so the per-client seed is re-derivable in isolation —
  // the property virtualized re-instantiation depends on.
  options.seed = Rng(job_.seed).Fork(static_cast<uint64_t>(id)).Next();
  if (job_.client_customizer) job_.client_customizer(id, &options);
  return options;
}

ClientCache::Entry FedRunner::MakeCacheEntry(int id) {
  ClientCache::Entry entry;
  CommChannel* client_channel = worker_channel_;
  if (job_.exec.backend == ExecutionBackend::kThreaded) {
    entry.port = std::make_unique<BufferingChannel>(worker_channel_);
    client_channel = entry.port.get();
  }
  entry.client = std::make_unique<Client>(
      id, DeriveClientOptions(id), job_.init_model,
      provider_->MaterializeClient(id), job_.trainer_factory(id),
      client_channel);
  if (job_.obs.enabled()) entry.client->set_obs(&job_.obs);
  if (job_.client_decorator) job_.client_decorator(id, entry.client.get());
  return entry;
}

int FedRunner::CacheCapacity() const {
  if (job_.client_cache_capacity > 0) return job_.client_cache_capacity;
  // Auto bound: the cohort — `concurrency` clients in flight, inflated by
  // the over-selection margin — plus slack for a replacement drawn while
  // the vacated slot's client is still live. Capacity only bounds peak
  // memory; any value >= 1 runs the identical course.
  int cohort = job_.server.concurrency;
  if (job_.server.strategy == Strategy::kSyncOverselect) {
    cohort = static_cast<int>(
        std::ceil(cohort * (1.0 + job_.server.overselect_frac)));
  }
  return std::max(cohort + 2, 1);
}

std::unique_ptr<Server> FedRunner::MakeServer() {
  ServerOptions server_options = job_.server;
  server_options.expected_clients = population_;
  if (server_options.seed == 0) server_options.seed = job_.seed;
  auto server = std::make_unique<Server>(server_options, job_.init_model,
                                         job_.aggregator_factory(),
                                         worker_channel_);
  if (job_.evaluator) {
    server->set_evaluator(job_.evaluator);
  } else {
    const Dataset* test = provider_ != nullptr ? &provider_->server_test()
                                               : &job_.data->server_test;
    server->set_evaluator(
        [test](Model* model) { return EvaluateClassifier(model, *test); });
  }
  return server;
}

void FedRunner::CrashAndRestoreServer() {
  Checkpoint snapshot;
  server_->ExportSnapshot(&snapshot);
  const std::vector<uint8_t> bytes = SerializeCheckpoint(snapshot);
  server_.reset();  // the server "process" dies; clients and queue survive
  server_ = MakeServer();
  if (job_.obs.enabled()) server_->set_obs(&job_.obs);
  auto restored = DeserializeCheckpoint(bytes);
  FS_CHECK(restored.ok()) << restored.status().ToString();
  const Status status = server_->RestoreSnapshot(restored.value());
  FS_CHECK(status.ok()) << status.ToString();
  ++recoveries_;
  job_.obs.Count("fs_recoveries_total");
  FS_LOG(Info) << "server crash drill: restored at round "
               << server_->round() << " t=" << server_->current_time();
}

void FedRunner::WriteSnapshot() {
  Checkpoint snapshot;
  server_->ExportSnapshot(&snapshot);
  auto written = snapshot_writer_.Write(snapshot);
  if (!written.ok()) {
    FS_LOG(Warning) << "snapshot write failed: "
                    << written.status().ToString();
    return;
  }
  job_.obs.Count("fs_snapshots_written_total");
  job_.obs.Count("fs_snapshot_bytes_total",
                 static_cast<double>(written.value()));
  if (job_.obs.course_log != nullptr) {
    job_.obs.course_log->AnnotateSnapshot(written.value());
  }
}

void FedRunner::DeliverToAggregator(const Message& msg) {
  const auto it = aggregator_index_.find(msg.receiver);
  if (it == aggregator_index_.end()) {
    FS_LOG(Warning) << "message to unknown aggregator " << msg.receiver;
    return;
  }
  if (dead_aggregators_.count(msg.receiver) > 0) {
    // A dead process silently eats its traffic — the standalone analogue
    // of the distributed hosts' mid-course connection EOF.
    fault_plan_.CountDeadAggregatorDrop();
    return;
  }
  EdgeAggregator* agg = aggregators_[it->second].get();
  const int crash_round =
      fault_plan_.AggregatorCrashRound(agg->shard(), agg->slot());
  if (crash_round >= 0 && msg.state >= crash_round) {
    // The scheduled crash: the incarnation dies on (not after) the first
    // delivery that would have had it act on round `crash_round`.
    dead_aggregators_.insert(msg.receiver);
    ++aggregators_killed_;
    fault_plan_.CountDeadAggregatorDrop();
    FS_LOG(Warning) << "fault plan killed aggregator " << msg.receiver
                    << " (shard " << agg->shard() << " slot " << agg->slot()
                    << ") at round " << msg.state;
    return;
  }
  agg->HandleMessage(msg);
  MaybeSnapshotAggregator(agg);
}

void FedRunner::MaybeSnapshotAggregator(EdgeAggregator* agg) {
  const int shard = agg->shard();
  if (shard >= static_cast<int>(shard_writers_.size()) ||
      !shard_writers_[shard].enabled()) {
    return;
  }
  if (agg->partials_forwarded() <= shard_forwarded_[shard]) return;
  shard_forwarded_[shard] = agg->partials_forwarded();
  auto written = shard_writers_[shard].Write(agg->MakeCheckpoint());
  if (!written.ok()) {
    FS_LOG(Warning) << "shard " << shard << " snapshot write failed: "
                    << written.status().ToString();
    return;
  }
  job_.obs.Count("fs_snapshots_written_total");
  job_.obs.Count("fs_snapshot_bytes_total",
                 static_cast<double>(written.value()));
}

void FedRunner::DeliverToVirtualClient(const Message& msg) {
  if (!cache_->IsLive(msg.receiver) && !job_.client_decorator) {
    // State-free deliveries to reclaimed clients skip instantiation.
    // Safe because the default handlers make them unobservable: OnFinish
    // only sets the finished flag (recorded in the cache), the assign_id
    // handler is a no-op, and neither consumes the client rng. The
    // virtual-clock advance is unobservable too — the queue delivers in
    // non-decreasing timestamp order, so no later reply is ever clamped
    // by it. A client_decorator may have overridden these handlers, so
    // its presence disables the short-circuits.
    if (msg.msg_type == events::kFinish) {
      cache_->MarkFinished(msg.receiver);
      return;
    }
    if (msg.msg_type == events::kAssignId) return;
  }
  cache_->Get(msg.receiver)->HandleMessage(msg);
  cache_->Trim();
}

void FedRunner::Send(const Message& msg) {
  job_.obs.OnChannelSend(msg);
  if (job_.through_wire) {
    auto decoded = DecodeMessage(EncodeMessage(msg));
    FS_CHECK(decoded.ok()) << decoded.status().ToString();
    queue_.Push(std::move(decoded.value()));
  } else {
    queue_.Push(msg);
  }
}

size_t FedRunner::RunParallelStage(int64_t* delivered) {
  // Candidate batch: the maximal prefix of the equal-virtual-time ready
  // set whose receivers are clients. A server-, aggregator-, or
  // unknown-targeted delivery ends the batch — that handling mutates
  // shared state and stays on the pump thread (DESIGN.md §12).
  const std::vector<const Message*> ready = queue_.PeekReadyBatch();
  size_t limit = ready.size();
  // Never batch across the crash drill: the kill must land between the
  // same two deliveries as in a serial run.
  const int64_t crash_at = job_.fault.server_crash_at_event;
  if (crash_at >= *delivered) {
    limit = std::min(limit, static_cast<size_t>(crash_at - *delivered));
  }
  size_t batch = 0;
  while (batch < limit) {
    const int receiver = ready[batch]->receiver;
    if (receiver < 1 || receiver > population_) break;
    // Virtualized: a delivery to a reclaimed client stays on the pump
    // thread (it may instantiate, restore, or short-circuit — all cache
    // mutations). The serial step handles it; by the next stage the
    // client is live and batchable.
    if (cache_ != nullptr && !cache_->IsLive(receiver)) break;
    ++batch;
  }
  if (batch < 2) return 0;  // nothing to overlap; a serial step is cheaper

  // Duplicate suppression consumes per-pair state on every pop; run it at
  // formation in pop order so the state evolves exactly as serially.
  std::vector<char> duplicate(batch, 0);
  if (job_.suppress_duplicates) {
    for (size_t i = 0; i < batch; ++i) {
      duplicate[i] = dedup_.IsDuplicate(*ready[i]) ? 1 : 0;
    }
  }

  // Per-delivery capture: the emitted messages plus private obs sinks
  // mirroring whichever sinks the job has. Tasks write only their own
  // entries; everything is replayed on the pump thread at commit.
  struct Capture {
    const Message* msg = nullptr;
    std::vector<Message> sends;
    MetricsBuffer metrics;
    std::unique_ptr<Tracer> tracer;
    ObsContext obs;  // points at the two members above; course_log stays
                     // null (no built-in client handler writes it)
  };
  const bool capture_obs =
      job_.obs.metrics != nullptr || job_.obs.tracer != nullptr;
  std::vector<Capture> captures(batch);
  std::vector<int> receivers(batch);
  // One task per client, preserving that client's delivery order (a
  // client's second delivery must see the state its first one left).
  std::map<int, std::vector<size_t>> by_client;
  for (size_t i = 0; i < batch; ++i) {
    receivers[i] = ready[i]->receiver;
    if (duplicate[i]) continue;
    Capture& c = captures[i];
    c.msg = ready[i];
    if (job_.obs.metrics != nullptr) c.obs.metrics_buffer = &c.metrics;
    if (job_.obs.tracer != nullptr) {
      c.tracer = std::make_unique<Tracer>();
      c.obs.tracer = c.tracer.get();
    }
    by_client[receivers[i]].push_back(i);
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(by_client.size());
  for (auto& [id, indices] : by_client) {
    Client* client =
        cache_ != nullptr ? cache_->Get(id) : clients_[id - 1].get();
    BufferingChannel* port =
        cache_ != nullptr ? cache_->Port(id) : ports_[id - 1].get();
    const std::vector<size_t>* idx = &indices;  // map nodes are stable
    tasks.push_back([client, port, &captures, idx, capture_obs] {
      for (size_t i : *idx) {
        Capture& c = captures[i];
        if (capture_obs) client->set_obs(&c.obs);
        port->BeginCapture(&c.sends);
        client->HandleMessage(*c.msg);
        port->EndCapture();
      }
    });
  }
  pool_->Run(&tasks);
  if (capture_obs) {
    for (const auto& entry : by_client) {
      Client* client = cache_ != nullptr ? cache_->Get(entry.first)
                                         : clients_[entry.first - 1].get();
      client->set_obs(&job_.obs);
    }
  }

  // Commit in canonical order — the serial pop order. Popping and then
  // forwarding each delivery's sends replays the exact queue-op sequence
  // of a serial run, so even the queue-depth gauges stay bit-identical.
  for (size_t i = 0; i < batch; ++i) {
    const Message msg = queue_.Pop();
    // Worker sends carry timestamps >= the batch time and later push
    // sequences, so the batch entries still pop first, in order.
    FS_CHECK_EQ(msg.receiver, receivers[i]);
    if (duplicate[i]) continue;
    ++*delivered;
    if (job_.delivery_tap) job_.delivery_tap(msg);
    Capture& c = captures[i];
    if (job_.obs.metrics != nullptr) c.metrics.ReplayInto(job_.obs.metrics);
    if (c.tracer != nullptr) job_.obs.tracer->Append(*c.tracer);
    for (const Message& send : c.sends) worker_channel_->Send(send);
  }
  // The batch is fully committed — a safe point to reclaim live clients.
  if (cache_ != nullptr) cache_->Trim();
  return batch;
}

CompletenessReport FedRunner::CheckCompleteness() {
  CompletenessChecker checker;
  checker.AddRegistry(server_->registry());
  if (cache_ != nullptr) {
    // Client behaviour is uniform up to handler overrides; client 1's
    // registry represents the population (it stays cached for the course).
    checker.AddRegistry(cache_->Get(1)->registry());
  } else if (!clients_.empty()) {
    checker.AddRegistry(clients_[0]->registry());
  }
  checker.MarkEntry(events::kJoinIn);
  checker.MarkTerminal(events::kFinish);
  // Bridge the server's internal condition chain: join_in completion leads
  // to all_joined_in; an update can satisfy the aggregation trigger; the
  // evaluation step can reach the target or trip early stopping.
  // Bridge the server's condition chain — but only for conditions whose
  // raising handler is actually registered, so removing a handler really
  // severs the graph (the Figure 16 error case).
  const HandlerRegistry& server_registry = server_->registry();
  auto bridge = [&](const char* from, const char* to) {
    if (server_registry.Has(from) && server_registry.Has(to)) {
      checker.AddEdge(from, to);
    }
  };
  bridge(events::kJoinIn, events::kAllJoinedIn);
  bridge(events::kModelUpdate, events::kAllReceived);
  bridge(events::kModelUpdate, events::kGoalAchieved);
  bridge(events::kModelUpdate, events::kTargetReached);
  bridge(events::kModelUpdate, events::kEarlyStop);
  const bool deadline =
      job_.server.receive_deadline > 0.0 &&
      (job_.server.strategy == Strategy::kSyncVanilla ||
       job_.server.strategy == Strategy::kSyncOverselect);
  if (job_.server.strategy == Strategy::kAsyncTime) {
    // The server schedules timer messages to itself at course start and
    // after each aggregation.
    bridge(events::kAllJoinedIn, events::kTimer);
    bridge(events::kTimer, events::kTimeUp);
    bridge(events::kTimeUp, events::kTimer);
  } else if (deadline) {
    // The receive deadline drives the same timer chain, firing the
    // partial-aggregation condition instead of time_up.
    bridge(events::kAllJoinedIn, events::kTimer);
    bridge(events::kTimer, events::kReceiveDeadline);
    bridge(events::kReceiveDeadline, events::kTimer);
    checker.MarkOptional(events::kTimeUp);
  } else {
    checker.MarkOptional(events::kTimer);
    checker.MarkOptional(events::kTimeUp);
  }
  if (!deadline) checker.MarkOptional(events::kReceiveDeadline);
  if (job_.server.topology.hierarchical() && !aggregators_.empty()) {
    // The shard layer's flows join the graph; the root's partial_update
    // handler raises the synchronous trigger internally.
    checker.AddRegistry(aggregators_[0]->registry());
    bridge(events::kPartialUpdate, events::kAllReceived);
    // Replication heartbeats terminate at the standbys; the watchdog
    // chain only fires on failures.
    checker.MarkOptional(events::kShardSnapshot);
    checker.MarkOptional(events::kStandbyPromoted);
  }
  // Failure handling is registered but only exercised when faults occur.
  checker.MarkOptional(events::kClientFailure);
  // Built-in capabilities that a particular course may not exercise.
  checker.MarkOptional(events::kEvaluate);
  checker.MarkOptional(events::kMetrics);
  checker.MarkOptional(events::kPerformanceDrop);
  checker.MarkOptional(events::kLowBandwidth);
  return checker.Check();
}

RunResult FedRunner::Run() {
  RunResult result;
  if (job_.check_completeness) {
    result.completeness = CheckCompleteness();
    FS_CHECK(result.completeness.complete)
        << "constructed FL course is incomplete:\n"
        << result.completeness.ToString();
  }

  // Course-lifecycle span: opens at virtual t = 0 and closes at the
  // server's final virtual time (inert when no tracer is attached).
  ScopedSpan course_span(job_.obs.tracer, "fl_course", 0.0, kServerId);

  // Building up: every client requests to join at t = 0. Standby
  // aggregators arm their failure watchdogs (no-op for active slots).
  for (auto& agg : aggregators_) agg->StartWatchdog();
  if (cache_ != nullptr) {
    // Virtualized: joins are synthesized from the descriptors —
    // byte-identical to Client::JoinIn (which consumes no client rng) —
    // so announcing a 1M-client population instantiates no Client. The
    // send enters at worker_channel_, the same decorator stack a live
    // client's channel feeds.
    for (int id = 1; id <= population_; ++id) {
      Message msg;
      msg.sender = id;
      msg.receiver = kServerId;
      msg.msg_type = events::kJoinIn;
      msg.timestamp = 0.0;
      const ClientOptions options = DeriveClientOptions(id);
      msg.payload.SetDouble("resp_score",
                            ResponsivenessScores({options.device})[0]);
      msg.payload.SetInt("num_train", provider_->TrainSize(id));
      worker_channel_->Send(std::move(msg));
    }
  } else {
    for (auto& client : clients_) client->JoinIn();
  }

  // Pump the virtual-time event loop. Messages to finished/unknown workers
  // are dropped. The loop ends when the course terminated and the queue
  // drained, or when nothing remains to deliver.
  const bool threaded = job_.exec.backend == ExecutionBackend::kThreaded;
  if (threaded && pool_ == nullptr) {
    int threads = job_.exec.num_threads;
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    pool_ = std::make_unique<WorkerPool>(threads < 1 ? 1 : threads);
  }
  int64_t delivered = 0;
  int last_seen_round = server_->round();
  while (!queue_.Empty()) {
    if (threaded && RunParallelStage(&delivered) > 0) {
      if (server_->finished() && queue_.Empty()) break;
      continue;
    }
    Message msg = queue_.Pop();
    if (job_.suppress_duplicates && dedup_.IsDuplicate(msg)) continue;
    // Crash drill: kill the server between deliveries — the instant a real
    // process could die with a queued-up transport.
    if (delivered == job_.fault.server_crash_at_event) {
      CrashAndRestoreServer();
    }
    ++delivered;
    if (job_.delivery_tap) job_.delivery_tap(msg);
    if (msg.receiver == kServerId) {
      server_->HandleMessage(msg);
      if (snapshot_writer_.enabled() && server_->round() != last_seen_round) {
        last_seen_round = server_->round();
        if (snapshot_writer_.ShouldSnapshot(last_seen_round)) WriteSnapshot();
      }
    } else if (msg.receiver >= 1 && msg.receiver <= population_) {
      if (cache_ != nullptr) {
        DeliverToVirtualClient(msg);
      } else {
        clients_[msg.receiver - 1]->HandleMessage(msg);
      }
    } else if (IsAggregatorId(msg.receiver)) {
      DeliverToAggregator(msg);
    } else {
      FS_LOG(Warning) << "message to unknown receiver " << msg.receiver;
    }
    // Fast exit: once the server finished, remaining traffic is moot
    // except "finish" notifications which were already queued by the
    // server; keep draining but stop early if only client replies remain.
    if (server_->finished() && queue_.Empty()) break;
  }
  FS_LOG(Info) << "FL course done: rounds=" << server_->stats().rounds
               << " delivered=" << delivered
               << " final_acc=" << server_->stats().final_accuracy;

  course_span.set_end(server_->current_time());
  course_span.AddArg("rounds", std::to_string(server_->stats().rounds));
  if (job_.obs.metrics != nullptr) {
    job_.obs.SetGauge("fs_course_rounds",
                      static_cast<double>(server_->stats().rounds));
    job_.obs.SetGauge("fs_course_final_accuracy",
                      server_->stats().final_accuracy);
    job_.obs.SetGauge("fs_course_finish_time_seconds",
                      server_->stats().finish_time);
    job_.obs.SetGauge("fs_course_messages_delivered",
                      static_cast<double>(delivered));
  }

  result.server = server_->stats();
  result.final_model = *server_->global_model();

  // Deployment: push the final global (shared part) to every client —
  // including clients that were never sampled — then evaluate each
  // client's deployment model on its local test split. This sweep is
  // O(population); cross-device-scale courses turn it off.
  if (job_.deploy_eval) {
    result.client_test_accuracy.reserve(population_);
    result.client_test_loss.reserve(population_);
    for (int id = 1; id <= population_; ++id) {
      Client* client =
          cache_ != nullptr ? cache_->Get(id) : clients_[id - 1].get();
      const StateDict final_shared = server_->global_model()->GetStateDict(
          client->options().share_filter);
      client->trainer()->UpdateModel(client->model(), final_shared);
      EvalResult eval = client->EvaluateLocalTest();
      result.client_test_accuracy.push_back(eval.accuracy);
      result.client_test_loss.push_back(eval.loss);
      if (cache_ != nullptr) cache_->Trim();
    }
  }

  if (cache_ != nullptr && job_.obs.metrics != nullptr) {
    const ClientCacheStats& cs = cache_->stats();
    job_.obs.SetGauge("fs_virtual_clients_instantiated",
                      static_cast<double>(cs.instantiations));
    job_.obs.SetGauge("fs_virtual_clients_restored",
                      static_cast<double>(cs.restores));
    job_.obs.SetGauge("fs_virtual_clients_evicted",
                      static_cast<double>(cs.evictions));
    job_.obs.SetGauge("fs_virtual_clients_live_peak",
                      static_cast<double>(cs.live_peak));
  }
  return result;
}

}  // namespace fedscope
