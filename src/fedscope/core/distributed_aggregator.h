#ifndef FEDSCOPE_CORE_DISTRIBUTED_AGGREGATOR_H_
#define FEDSCOPE_CORE_DISTRIBUTED_AGGREGATOR_H_

#include <memory>
#include <string>

#include "fedscope/core/distributed.h"
#include "fedscope/core/edge_aggregator.h"

namespace fedscope {

/// Hosts one edge aggregator of a hierarchical topology (DESIGN.md §11):
/// connects to the root DistributedServerHost, announces its worker id
/// with a host-level join_in, and serves the unchanged EdgeAggregator
/// worker over that single upstream connection. The root host relays
/// shard traffic (model relays, client updates, replication heartbeats)
/// in both directions, so aggregators — like clients — need exactly one
/// upstream address.
///
/// Failure detection is the hub's: a mid-course EOF on this host's
/// connection makes the root wake the shard's lowest live standby with a
/// synthesized watchdog timer. The worker's self-armed watchdog
/// (StartWatchdog) is never started here — a self-addressed timer would
/// bounce through the hub as fast as TCP allows, a busy-poll the
/// standalone simulator's timer service exists to avoid.
class DistributedAggregatorHost {
 public:
  DistributedAggregatorHost(EdgeAggregatorOptions options,
                            const std::string& server_host, int server_port,
                            TransportOptions transport = {});
  ~DistributedAggregatorHost();

  EdgeAggregator* aggregator() { return aggregator_.get(); }

  /// Attaches observability sinks (borrowed; must outlive the host) to
  /// the worker and the uplink.
  void set_obs(const ObsContext* obs);

  /// Enables durable snapshots of the replicable shard state, written
  /// after every forwarded partial that matches the policy. An empty
  /// policy.worker_prefix defaults to "s<shard>-": every slot of a shard
  /// shares the prefix, so a cold-restarted standby can restore whatever
  /// incarnation wrote last, while other shards sharing the directory
  /// stay invisible (checkpoint.h). Must be set before Run().
  void set_snapshot_policy(SnapshotPolicy policy);
  const SnapshotWriter& snapshot_writer() const { return snapshot_writer_; }

  /// Restores the replicable shard state (epoch, round, forwarded count)
  /// from the newest valid snapshot under this host's prefix. Must be
  /// called before Run(); NotFound when the directory has none.
  Status RestoreFromSnapshotDir(const std::string& directory);

  /// Test knob simulating a crash: Run() returns abruptly once the worker
  /// has forwarded this many partial updates (0 disables). The root
  /// observes a mid-course EOF — exactly what a SIGKILLed aggregator
  /// process produces — and fails the shard over to a standby.
  void set_halt_after_forwards(int64_t forwards) {
    halt_after_forwards_ = forwards;
  }

  /// Joins the root and serves shard events until "finish" (or the
  /// connection drops — aggregator hosts do not re-join; a replacement
  /// standby carries the shard instead). Returns Ok on a clean finish
  /// and on a simulated halt.
  Status Run();

 private:
  /// Shared per-shard snapshot prefix (see set_snapshot_policy).
  std::string ShardPrefix() const;

  std::string server_host_;
  int server_port_;
  TransportOptions transport_;
  std::unique_ptr<EpochUplink> uplink_;
  std::unique_ptr<EdgeAggregator> aggregator_;
  Status connect_status_;
  SnapshotWriter snapshot_writer_;
  int64_t halt_after_forwards_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_DISTRIBUTED_AGGREGATOR_H_
