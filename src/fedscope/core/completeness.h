#ifndef FEDSCOPE_CORE_COMPLETENESS_H_
#define FEDSCOPE_CORE_COMPLETENESS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fedscope/core/handler_registry.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// Result of completeness checking (paper §3.6 + Appendix E): the message-
/// transmission flow of a constructed FL course is a directed graph; the
/// course is complete iff there is a path from the "start" node to the
/// "termination" node. Nodes unreachable from start are redundant and only
/// produce warnings.
struct CompletenessReport {
  bool complete = false;
  std::vector<std::string> reachable;
  std::vector<std::string> unreachable;  // redundant nodes -> warnings
  std::vector<std::pair<std::string, std::string>> edges;

  std::string ToString() const;
};

/// Builds the flow graph from the workers' declared handler flows and
/// verifies start -> termination reachability.
class CompletenessChecker {
 public:
  static constexpr char kStart[] = "start";
  static constexpr char kTermination[] = "termination";

  CompletenessChecker();

  /// Adds an edge trigger-event -> emitted-event.
  void AddEdge(const std::string& from, const std::string& to);

  /// Imports every declared flow of a worker's registry.
  void AddRegistry(const HandlerRegistry& registry);

  /// Marks an event as course entry (start -> event). By default "join_in"
  /// is the entry of the built-in course.
  void MarkEntry(const std::string& event);

  /// Marks an event as terminating the course (event -> termination).
  /// By default "finish" terminates the built-in course.
  void MarkTerminal(const std::string& event);

  /// Marks a node as an optional capability: it is still reported as
  /// redundant when unreachable, but no warning is logged (built-in
  /// handlers that a particular course does not exercise).
  void MarkOptional(const std::string& event);

  CompletenessReport Check() const;

 private:
  std::map<std::string, std::set<std::string>> adjacency_;
  std::set<std::string> nodes_;
  std::set<std::string> optional_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_COMPLETENESS_H_
