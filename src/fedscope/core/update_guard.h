#ifndef FEDSCOPE_CORE_UPDATE_GUARD_H_
#define FEDSCOPE_CORE_UPDATE_GUARD_H_

#include <map>
#include <set>
#include <string>

#include "fedscope/comm/message.h"
#include "fedscope/nn/model.h"

namespace fedscope {

/// Server-ingress validation policy (DESIGN.md §14). Off by default: a
/// guard-less course is byte-identical to the pre-guard behaviour.
struct UpdateGuardOptions {
  bool enabled = false;
  /// L2 norm bound on the whole update delta; 0 disables the bound. An
  /// over-norm delta is rejected, or scaled down to the bound when
  /// `clip_to_bound` is set (clipping is a repair, not a violation).
  double l2_bound = 0.0;
  bool clip_to_bound = false;
  /// Hard violations (signature / non-finite / over-norm reject) before a
  /// client is quarantined out of the sampling pool; 0 disables quarantine.
  int quarantine_after = 3;
};

/// Outcome of inspecting one update. kClip means the delta was scaled to
/// the L2 bound in place and is usable; the kReject* verdicts mean the
/// delta must not reach an aggregator.
enum class GuardVerdict {
  kAccept,
  kClip,
  kRejectSignature,
  kRejectNonFinite,
  kRejectNorm,
};

/// Metric label for a rejecting verdict ("signature" / "non_finite" /
/// "norm"); kAccept/kClip have no rejection label.
const char* GuardReasonLabel(GuardVerdict verdict);

struct GuardDecision {
  GuardVerdict verdict = GuardVerdict::kAccept;
  /// True when this violation tripped the quarantine bar for the sender.
  bool quarantine = false;
  /// Human-readable cause, for logs.
  std::string detail;

  bool rejected() const {
    return verdict == GuardVerdict::kRejectSignature ||
           verdict == GuardVerdict::kRejectNonFinite ||
           verdict == GuardVerdict::kRejectNorm;
  }
};

/// Deterministic ingress pipeline validating every received update against
/// the broadcast model signature (tensor names, shapes, element counts),
/// screening NaN/Inf, and applying the optional L2 bound. Decisions are a
/// pure function of the delta and the accumulated violation counts — no
/// randomness — so guarded courses stay bit-reproducible and snapshot
/// restore (SaveState/LoadState) resumes them bit-identically.
class UpdateGuard {
 public:
  explicit UpdateGuard(UpdateGuardOptions options);

  const UpdateGuardOptions& options() const { return options_; }

  /// Validates `delta` against `signature`; clips it in place when the L2
  /// bound is exceeded in clip mode. A rejecting verdict books a violation
  /// against `client_id` when `track_violations` is set (partials from
  /// edge aggregators pass false: the members were booked at the edge).
  GuardDecision Inspect(int client_id, const StateDict& signature,
                        StateDict* delta, bool track_violations = true);

  /// Books one violation detected elsewhere (an edge aggregator's reject)
  /// against `client_id`; returns true when it tripped quarantine.
  bool RecordViolation(int client_id);

  bool IsQuarantined(int client_id) const {
    return quarantined_.count(client_id) > 0;
  }
  const std::set<int>& quarantined() const { return quarantined_; }
  const std::map<int, int>& violations() const { return violations_; }

  /// Persists / restores violation counts and the quarantine set for
  /// crash snapshots (keys under `prefix`).
  void SaveState(Payload* p, const std::string& prefix) const;
  void LoadState(const Payload& p, const std::string& prefix);

 private:
  UpdateGuardOptions options_;
  std::map<int, int> violations_;
  std::set<int> quarantined_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_UPDATE_GUARD_H_
