#ifndef FEDSCOPE_CORE_SERVER_H_
#define FEDSCOPE_CORE_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fedscope/core/aggregator.h"
#include "fedscope/core/checkpoint.h"
#include "fedscope/core/sampler.h"
#include "fedscope/core/topology.h"
#include "fedscope/core/trainer.h"
#include "fedscope/core/update_guard.h"
#include "fedscope/core/worker.h"
#include "fedscope/nn/model.h"
#include "fedscope/util/config.h"

namespace fedscope {

/// Which condition event triggers federated aggregation (paper §3.3):
///   kSyncVanilla    : "all_received"  — wait for every sampled client.
///   kSyncOverselect : "goal_achieved" with staleness toleration 0 and
///                     over-sampled cohorts (the over-selection mechanism).
///   kAsyncGoal      : "goal_achieved" — aggregate once `aggregation_goal`
///                     updates are buffered (FedBuff/SAFA family).
///   kAsyncTime      : "time_up"       — aggregate when the round's virtual
///                     time budget expires.
enum class Strategy { kSyncVanilla, kSyncOverselect, kAsyncGoal, kAsyncTime };

/// When the server sends out models (§3.3.1-iii): in one batch right after
/// aggregating, or one-at-a-time as each update arrives (keeping the
/// training concurrency constant).
enum class BroadcastManner { kAfterAggregating, kAfterReceiving };

struct ServerOptions {
  Strategy strategy = Strategy::kSyncVanilla;
  BroadcastManner broadcast = BroadcastManner::kAfterAggregating;
  /// "uniform" | "responsiveness" | "group".
  std::string sampler = "uniform";
  int num_groups = 5;
  /// Number of clients training concurrently.
  int concurrency = 10;
  /// Extra fraction sampled by the over-selection mechanism.
  double overselect_frac = 0.3;
  /// Updates needed to trigger "goal_achieved".
  int aggregation_goal = 5;
  /// Updates staler than this are dropped from aggregation.
  int staleness_tolerance = 10;
  /// Virtual-seconds budget per round for the kAsyncTime strategy.
  double time_budget = 60.0;
  /// Minimum buffered updates for a time_up aggregation to proceed;
  /// otherwise the server takes remedial measures (extends the round).
  int min_received = 1;
  /// Per-round receive deadline (virtual seconds) for the synchronous
  /// strategies: on expiry the server aggregates the partial cohort when
  /// >= min_received updates are buffered, otherwise it presumes the
  /// outstanding clients dead and samples replacements. 0 disables the
  /// deadline (the paper-faithful blocking behaviour). Needs the
  /// simulator's timer service, so standalone-only like kAsyncTime.
  double receive_deadline = 0.0;
  /// Backstop for the deadline / time-budget extension loop: after this
  /// many consecutive extensions within one round the server aggregates
  /// whatever is buffered, or aborts the course when the buffer is empty
  /// (every participant presumed dead).
  int max_round_extensions = 25;
  int max_rounds = 50;
  /// Stop once global test accuracy reaches this (0 disables).
  double target_accuracy = 0.0;
  /// Evaluate the global model every N rounds.
  int eval_interval = 1;
  /// Terminate after this many evaluations without improvement (0 = off).
  int early_stop_patience = 0;
  /// Number of join_in messages to wait for before starting.
  int expected_clients = 0;
  /// Request a final local evaluation from every client at course end
  /// (exercises the evaluate/metrics message flow; results land in
  /// ServerStats::client_metrics).
  bool collect_client_metrics = false;
  /// The shared part of the model (must match the clients' share filter).
  NameFilter share_filter;
  /// Aggregation topology (DESIGN.md §11). Flat by default; with shards,
  /// the server broadcasts one grouped model_para per shard to the shard's
  /// active edge aggregator and aggregates partial_update messages instead
  /// of per-client model_update ones.
  Topology topology;
  /// Ingress update validation (DESIGN.md §14). Disabled by default:
  /// guard-off courses are byte-identical to the pre-guard behaviour.
  UpdateGuardOptions guard;
  uint64_t seed = 0;

  ServerOptions() : share_filter(AcceptAll()) {}
};

/// Everything the benches read out of a finished FL course.
struct ServerStats {
  /// (virtual seconds, global test accuracy) after each evaluation.
  std::vector<std::pair<double, double>> curve;
  /// Effective aggregation count per client id (1-based; index 0 unused) —
  /// the quantity of Figure 10.
  std::vector<int64_t> agg_count;
  /// Staleness of every update that contributed to an aggregation —
  /// the distribution of Figure 11.
  std::vector<int> staleness_log;
  int64_t dropped_stale = 0;
  /// Training requests declined by clients (e.g. low_bandwidth behaviour).
  int64_t declined = 0;
  /// Clients presumed dead: receive-deadline expiries in standalone mode,
  /// mid-course connection failures in distributed mode.
  int64_t dropouts = 0;
  /// Replacement clients sampled into slots vacated by presumed-dead ones.
  int64_t replacements = 0;
  /// Round extensions taken (receive-deadline expiries with too little
  /// feedback, plus the time_up remedial measures of §3.3.2).
  int64_t round_extensions = 0;
  /// The extension backstop gave up on a starved round and ended the
  /// course early.
  bool aborted = false;
  /// Client-reported test accuracy from the final metrics round
  /// (client id -> accuracy); filled when collect_client_metrics is on.
  std::map<int, double> client_metrics;
  /// Shard failovers acknowledged (standby_promoted messages accepted).
  int64_t shard_failovers = 0;
  /// Partial updates rejected for carrying a superseded shard epoch
  /// (messages from a dead aggregator incarnation).
  int64_t stale_partials = 0;
  /// Updates rejected by the ingress guard (DESIGN.md §14), including
  /// edge-aggregator rejections reported through partials.
  int64_t updates_rejected = 0;
  /// Over-norm updates scaled down to the L2 bound (guard clip mode).
  int64_t updates_clipped = 0;
  /// Clients exiled from the sampling pool after reaching the guard's
  /// violation bar, in quarantine order.
  std::vector<int> quarantined;
  int rounds = 0;
  bool reached_target = false;
  /// Virtual seconds to reach target accuracy (-1 if never).
  double time_to_target = -1.0;
  double best_accuracy = 0.0;
  double final_accuracy = 0.0;
  double finish_time = 0.0;
};

/// The FL server: coordinates the course with the condition events of §3.3,
/// delegates aggregation to an Aggregator and client selection to a
/// Sampler (both swappable), and never blocks on slow clients unless the
/// synchronous strategy demands it.
class Server : public BaseWorker {
 public:
  /// Evaluates a model on the server's held-out data (installed by the
  /// runner; what the paper logs as global accuracy).
  using Evaluator = std::function<EvalResult(Model*)>;
  /// Manager plug-in hook: per-client, per-round configuration sampling
  /// (FedEx). The returned config's hpo.* keys ride along the broadcast.
  using ConfigProvider = std::function<Config(int client_id, int round)>;
  /// Manager plug-in hook: consumes client feedback from update messages.
  using FeedbackConsumer =
      std::function<void(int client_id, int round, const Payload& payload)>;

  Server(ServerOptions options, Model global_model,
         std::unique_ptr<Aggregator> aggregator, CommChannel* channel);

  void set_evaluator(Evaluator evaluator) {
    evaluator_ = std::move(evaluator);
  }
  void set_config_provider(ConfigProvider provider) {
    config_provider_ = std::move(provider);
  }
  void set_feedback_consumer(FeedbackConsumer consumer) {
    feedback_consumer_ = std::move(consumer);
  }

  /// Captures the complete course state into `checkpoint` (DESIGN.md §10):
  /// model, rng stream position, sampler cursor, aggregator accumulators,
  /// membership, the pending cohort with its buffered deltas, stats, and
  /// the pending obs accumulators. Together with a surviving transport
  /// this is sufficient for a bit-identical resume.
  void ExportSnapshot(Checkpoint* checkpoint);
  /// Restores a snapshot captured by ExportSnapshot onto a freshly
  /// constructed Server whose options match the snapshotted course
  /// (strategy and seed are cross-checked). Function hooks — evaluator,
  /// config provider, feedback consumer, obs — are process-local, not part
  /// of the snapshot, and must be reinstalled by the caller.
  Status RestoreSnapshot(const Checkpoint& checkpoint);

  Model* global_model() { return &global_model_; }
  Aggregator* aggregator() { return aggregator_.get(); }
  const ServerOptions& options() const { return options_; }
  const ServerStats& stats() const { return stats_; }
  bool finished() const { return finished_; }
  /// Null unless options().guard.enabled.
  const UpdateGuard* guard() const { return guard_.get(); }
  int round() const { return round_; }
  int joined_clients() const { return static_cast<int>(clients_.size()); }
  const std::vector<ClientUpdate>& buffer() const { return buffer_; }

 private:
  void RegisterDefaultHandlers();
  void OnJoinIn(const Message& msg);
  void OnModelUpdate(const Message& msg);
  void OnTimer(const Message& msg);
  void OnMetrics(const Message& msg);
  void OnClientFailure(const Message& msg);
  /// Hierarchical topologies: one weighted pre-aggregated update from an
  /// edge aggregator, covering (part of) its shard's cohort.
  void OnPartialUpdate(const Message& msg);
  /// Guard bookkeeping for one rejected update, then the declined-style
  /// cohort repair: refill the freed slot (after-aggregating) or lean on
  /// the after-receiving rebroadcast, so an all-rejected cohort extends
  /// the round instead of stalling or crashing.
  void HandleRejectedUpdate(const Message& msg, const GuardDecision& decision);
  /// Resets the round-extension backstop after a rejection put a
  /// replacement broadcast in flight; quarantine bounds the recurrence,
  /// so the reset is skipped when quarantine is disabled.
  void RestartStarvationBackstop();
  /// Exiles a client via the presume-dead machinery (removed_): it leaves
  /// the sampling pool for the rest of the course.
  void QuarantineClient(int id);
  /// Hierarchical topologies: a standby took over a shard. Bumps the
  /// shard's epoch, reroutes to the new aggregator, and re-broadcasts the
  /// shard's in-flight cohort through it.
  void OnStandbyPromoted(const Message& msg);
  /// Sync-strategy receive-deadline expiry: partial aggregation when
  /// enough updates are buffered, otherwise replace the presumed-dead
  /// cohort and extend the round.
  void HandleReceiveDeadline(const Message& msg);
  /// Extension bookkeeping shared by the deadline and time_up remedial
  /// paths. Returns true when the backstop fired (aggregate-or-abort was
  /// taken and the caller must not extend further).
  bool CountExtensionAndCheckBackstop(const std::string& aggregate_event,
                                      const Message& msg);

  /// Handler bodies for the condition events. `trigger` names the
  /// condition event that fired (all_received / goal_achieved / time_up);
  /// it feeds the course log and aggregation metrics.
  void StartTraining(const Message& context);
  void PerformAggregation(const std::string& trigger, const Message& context);
  void FinishCourse(const Message& context);
  /// Flushes the pending-round observability accumulators into the course
  /// log / metrics / tracer after an aggregation (obs-attached runs only).
  /// `usable_contribs` carries per-update contributor ids in hierarchical
  /// mode (parallel to `usable`; empty in flat mode).
  void RecordRound(const std::string& trigger, const Message& context,
                   const std::vector<ClientUpdate>& usable,
                   const std::vector<std::vector<int>>& usable_contribs,
                   bool evaluated);

  /// Sends the current global model to the given clients at round round_.
  /// Hierarchical topologies group the cohort by shard and send one
  /// model_para per shard to its active edge aggregator instead.
  void BroadcastModel(const std::vector<int>& client_ids, double timestamp);
  void BroadcastModelSharded(const std::vector<int>& client_ids,
                             double timestamp);
  /// Worker id of the aggregator currently serving `shard`.
  int ActiveAggregatorId(int shard) const {
    return AggregatorId(shard, shard_active_slot_[shard]);
  }
  /// Samples up to `k` idle clients.
  std::vector<int> SampleIdle(int k);
  /// Brings the number of in-flight clients back up to the configured
  /// concurrency (+ over-selection margin for kSyncOverselect).
  void Replenish(double timestamp);
  /// Schedules a "timer" message to self at now + time_budget (kAsyncTime)
  /// or now + receive_deadline (sync strategies with a deadline).
  void ScheduleTimer(double now);
  /// True when the sync receive deadline is configured and applies.
  bool deadline_active() const {
    return options_.receive_deadline > 0.0 &&
           (options_.strategy == Strategy::kSyncVanilla ||
            options_.strategy == Strategy::kSyncOverselect);
  }
  /// Evaluates the global model, updates the curve, and checks the
  /// termination conditions. Returns true if the course terminated.
  bool EvaluateAndCheckStop(const Message& context);

  ServerOptions options_;
  Model global_model_;
  std::unique_ptr<Aggregator> aggregator_;
  /// Constructed only when options_.guard.enabled (zero cost otherwise).
  std::unique_ptr<UpdateGuard> guard_;
  std::unique_ptr<Sampler> sampler_;
  Rng rng_;

  Evaluator evaluator_;
  ConfigProvider config_provider_;
  FeedbackConsumer feedback_consumer_;

  std::set<int> clients_;        // joined client ids
  std::map<int, int> busy_;      // in-flight clients -> round they work on
  /// Largest client id ever joined, and the ids removed since (failures).
  /// When clients_ ∪ removed_ is exactly [1, max_joined_] the idle set is a
  /// dense range minus a small exclusion list, so SampleIdle can draw
  /// through a CandidateView in O(cohort + |busy| + |removed_|) instead of
  /// enumerating the population (DESIGN.md §13). Derived conservatively on
  /// snapshot restore; both paths consume the rng identically.
  int max_joined_ = 0;
  std::set<int> removed_;
  std::vector<double> resp_scores_;  // by client id - 1
  std::vector<ClientUpdate> buffer_;
  /// Hierarchical: client ids covered by the buffered partial at the same
  /// index (per-client attribution of stats; empty vectors in flat mode).
  std::vector<std::vector<int>> buffer_contributors_;
  /// Hierarchical: cohort members accounted for this round (contributors
  /// plus declines reported through partials) — the sync trigger compares
  /// this against sampled_this_round_ because one partial covers many.
  int covered_this_round_ = 0;
  /// Hierarchical: per-shard session epoch (bumped on failover) and the
  /// slot of the shard's currently active aggregator.
  std::vector<int64_t> shard_epochs_;
  std::vector<int> shard_active_slot_;
  int sampled_this_round_ = 0;   // cohort size for all_received
  int extensions_this_round_ = 0;  // consecutive extensions (backstop)
  /// Starved-round restaff cycles this round: once the course has
  /// rejected feedback (so the fleet is provably alive), a starved
  /// backstop presumes the in-flight cohort dead and restaffs it instead
  /// of aborting — at most this many times per round, so a genuinely
  /// dead fleet still terminates.
  static constexpr int kMaxStarvationRestaffs = 3;
  int restaffs_this_round_ = 0;
  int round_ = 0;
  bool started_ = false;
  bool finished_ = false;
  int evals_since_best_ = 0;
  double last_eval_loss_ = 0.0;
  ServerStats stats_;

  // Pending-round observability accumulators: traffic and drop counts
  // since the previous aggregation. Maintained only when obs() is attached
  // (zero cost on the default path); flushed by RecordRound.
  double last_agg_time_ = 0.0;
  int64_t pending_uplink_bytes_ = 0;
  int64_t pending_downlink_bytes_ = 0;
  int pending_broadcasts_ = 0;
  int64_t pending_dropped_ = 0;
  int64_t pending_declined_ = 0;
  int64_t pending_dropouts_ = 0;
  int64_t pending_replacements_ = 0;
  int64_t pending_partials_ = 0;
  int64_t pending_failovers_ = 0;
  int64_t pending_rejected_ = 0;
  int64_t pending_quarantined_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_SERVER_H_
