#ifndef FEDSCOPE_CORE_DISTRIBUTED_H_
#define FEDSCOPE_CORE_DISTRIBUTED_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fedscope/comm/socket_transport.h"
#include "fedscope/core/client.h"
#include "fedscope/core/server.h"
#include "fedscope/fault/dedup.h"

namespace fedscope {

/// Payload key carrying the server's session epoch. The epoch starts at 0
/// and is bumped every time a restarted server restores from a snapshot
/// (DESIGN.md §10). The server host stamps it on every outgoing message;
/// clients adopt it from incoming messages and echo it on their uplink.
/// Non-join messages carrying a different (or no) epoch are rejected at
/// the transport ingress — they were produced against a dead incarnation
/// of the course. join_in is exempt: it is how a client learns the epoch.
inline constexpr char kSessionEpochKey[] = "session_epoch";

/// Distributed mode: the same Server/Client workers as the standalone
/// simulator, but messages travel over TCP between real processes (or
/// threads). This is the paper's second deployment mode; the event-driven
/// workers are unchanged — only the CommChannel implementation differs,
/// which is the point of the abstraction.
///
/// Scope: the synchronous and goal-triggered strategies (kSyncVanilla /
/// kSyncOverselect / kAsyncGoal). kAsyncTime needs a wall-clock timer
/// service and is standalone-only.
///
/// Timestamps carry wall-clock seconds since the host started; they order
/// messages but are not the virtual-time measurements of the simulator.
///
/// Hierarchical topologies (ServerOptions::topology, DESIGN.md §11) run
/// the root host as a star-topology hub: edge-aggregator hosts
/// (DistributedAggregatorHost) and clients all connect to it, and any
/// incoming message not addressed to the root worker is relayed to the
/// receiver's connection. Aggregator↔client traffic therefore costs two
/// hops, but workers stay unchanged and every participant needs exactly
/// one upstream address — the deployment shape the paper's edge setting
/// assumes (NAT'd devices cannot accept inbound connections anyway).

/// CommChannel over one upstream TCP connection that echoes the session
/// epoch the hub stamps on its traffic (see kSessionEpochKey). Shared by
/// the client and edge-aggregator hosts.
class EpochUplink : public CommChannel {
 public:
  Status Open(const std::string& host, int port,
              const TransportOptions& transport);

  /// Drops the dead connection and reconnects with the same seeded
  /// backoff. The session epoch is forgotten: the restarted server
  /// teaches the new one through the re-join handshake.
  Status Reopen(const std::string& host, int port,
                const TransportOptions& transport);

  void Send(const Message& msg) override;

  void set_obs(const ObsContext* obs) { obs_ = obs; }
  void set_epoch(int64_t epoch) { epoch_ = epoch; }

  Result<Message> Receive() { return connection_.ReceiveMessage(); }
  void Close() { connection_.Close(); }

 private:
  TcpConnection connection_{-1};
  const ObsContext* obs_ = nullptr;
  /// Last session epoch adopted from an incoming message; -1 = unknown.
  int64_t epoch_ = -1;
};

/// Hosts the FL server: accepts `expected_clients` connections (plus one
/// per edge-aggregator slot in hierarchical topologies), routes incoming
/// messages into the Server worker or — hub duty — relays them to the
/// addressed participant's connection.
class DistributedServerHost {
 public:
  /// The listener determines the port (use TcpListener::Bind(0) and
  /// publish listener.port() to clients). `transport` timeouts are applied
  /// to every accepted connection; a recv timeout keeps reader threads
  /// responsive without treating idle clients as failed.
  /// ServerOptions::receive_deadline must stay 0 here: the distributed host
  /// detects failure through mid-course EOF, not virtual-time deadlines.
  DistributedServerHost(ServerOptions options, Model global_model,
                        std::unique_ptr<Aggregator> aggregator,
                        TcpListener listener,
                        TransportOptions transport = {});
  ~DistributedServerHost();

  Server* server() { return server_.get(); }

  /// Clients whose connection dropped before the course finished. Each one
  /// was reported to the Server worker as a client_failure event.
  int64_t failed_clients() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failed_clients_;
  }

  /// Edge-aggregator connections that dropped before the course finished.
  /// Each one triggered a failover wake of its shard's lowest live standby
  /// (or a logged error when the shard had none left).
  int64_t failed_aggregators() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failed_aggregators_;
  }

  /// Retransmitted messages suppressed before reaching the Server worker.
  int64_t duplicates_suppressed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dedup_.suppressed();
  }

  /// Attaches observability sinks (borrowed; must outlive the host) to the
  /// server worker and the outgoing router. Distributed-mode timestamps are
  /// wall seconds, so traces/metrics are not bit-reproducible across runs.
  void set_obs(const ObsContext* obs) {
    obs_ = obs;
    server_->set_obs(obs);
  }

  /// Restores a restarted server host from a durable snapshot: loads the
  /// course section into the Server worker, restores the transport extras
  /// (DuplicateSuppressor state), and bumps the session epoch past the
  /// snapshot's. Must be called before Run(), on a host constructed with
  /// the same options/model/aggregator shape as the crashed one. The next
  /// Run() then accepts `expected_clients` *re-joins*: the Server worker
  /// re-acks known clients and re-broadcasts to the interrupted cohort.
  Status RestoreFromCheckpoint(const Checkpoint& checkpoint);

  /// Enables durable snapshots (written right after each round that
  /// matches the policy, with the session epoch and suppressor state as
  /// transport extras). Must be set before Run(). Disabled by default.
  void set_snapshot_policy(const SnapshotPolicy& policy) {
    snapshot_writer_ = SnapshotWriter(policy);
  }
  const SnapshotWriter& snapshot_writer() const { return snapshot_writer_; }

  /// Test knob simulating a crash: Run() returns abruptly (no finish
  /// broadcast, connections dropped) once the server passes this round.
  /// 0 disables. Clients observe a mid-course EOF — exactly what a
  /// SIGKILLed server process produces.
  void set_halt_after_round(int round) { halt_after_round_ = round; }

  /// Session epoch of this incarnation (0 for a fresh course).
  int64_t session_epoch() const { return session_epoch_; }

  /// Messages rejected at the transport ingress for carrying a stale (or
  /// missing) session epoch.
  int64_t stale_epoch_rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stale_epoch_rejected_;
  }

  /// Accepts clients, runs the course to completion, disconnects.
  /// Returns the server stats.
  ServerStats Run();

  /// Transport ingress: epoch check + duplicate suppression, then enqueue
  /// for the event loop. Public so protocol tests can inject frames
  /// without a socket; real traffic arrives via reader threads.
  void PushIncoming(Message msg);

 private:
  /// Outgoing channel: routes by msg.receiver over the TCP connections.
  class Router;

  void ReaderLoop(int worker_id, TcpConnection* connection);
  /// Mid-course EOF handling for an edge-aggregator connection (reader
  /// thread of the dead connection): waits out the lowest live standby's
  /// staggered replication deadline, then wakes it with a synthesized
  /// watchdog timer — EOF is a definite death signal, so one wake fires
  /// "late" by construction and the standby promotes on first delivery.
  void AggregatorFailover(int aggregator_id);
  /// Exports a snapshot (Server course state + transport extras) and
  /// writes it durably per the policy. Event-loop thread only.
  void WriteSnapshot();

  TcpListener listener_;
  TransportOptions transport_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<Server> server_;
  const ObsContext* obs_ = nullptr;

  /// Set by the event-loop thread once the Server worker finished; readers
  /// use it to tell an orderly course-end hangup from a mid-course failure.
  std::atomic<bool> course_finished_{false};

  /// Written only before Run() starts (constructor default or
  /// RestoreFromCheckpoint); reader threads are created after, so plain
  /// reads are race-free.
  int64_t session_epoch_ = 0;
  int halt_after_round_ = 0;
  SnapshotWriter snapshot_writer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> incoming_;
  DuplicateSuppressor dedup_;  // guarded by mu_
  int64_t failed_clients_ = 0;  // guarded by mu_
  int64_t failed_aggregators_ = 0;  // guarded by mu_
  int64_t stale_epoch_rejected_ = 0;  // guarded by mu_
  int eof_count_ = 0;

  std::map<int, TcpConnection> connections_;
  std::mutex send_mu_;
  std::vector<std::thread> readers_;
};

/// Hosts one FL client: connects to the server, joins in, and serves
/// events until the course finishes.
class DistributedClientHost {
 public:
  /// `client_id` must be unique across the federation (1-based) and is
  /// announced to the server in the join_in message. `transport` governs
  /// connect retry/backoff (clients may start before the server's listener
  /// is bound) and socket timeouts; defaults keep the untuned behaviour.
  DistributedClientHost(int client_id, ClientOptions options, Model model,
                        SplitDataset data,
                        std::unique_ptr<BaseTrainer> trainer,
                        const std::string& server_host, int server_port,
                        TransportOptions transport = {});
  ~DistributedClientHost();

  Client* client() { return client_.get(); }

  /// Attaches observability sinks (borrowed; must outlive the host) to the
  /// client worker and the uplink channel.
  void set_obs(const ObsContext* obs);

  /// Joins the course and processes messages until "finish" (or the
  /// connection drops). A mid-course connection loss triggers up to
  /// TransportOptions::rejoin_attempts reconnect + re-join cycles against
  /// a restarted server (adopting its new session epoch) before giving
  /// up. Returns Ok on a clean finish.
  Status Run();

  /// Re-joins performed after mid-course connection losses.
  int rejoins() const { return rejoins_; }

 private:
  int client_id_;
  std::string server_host_;
  int server_port_;
  TransportOptions transport_;
  std::unique_ptr<EpochUplink> uplink_;
  std::unique_ptr<Client> client_;
  Status connect_status_;
  int rejoins_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_DISTRIBUTED_H_
