#ifndef FEDSCOPE_CORE_DISTRIBUTED_H_
#define FEDSCOPE_CORE_DISTRIBUTED_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fedscope/comm/socket_transport.h"
#include "fedscope/core/client.h"
#include "fedscope/core/server.h"
#include "fedscope/fault/dedup.h"

namespace fedscope {

/// Distributed mode: the same Server/Client workers as the standalone
/// simulator, but messages travel over TCP between real processes (or
/// threads). This is the paper's second deployment mode; the event-driven
/// workers are unchanged — only the CommChannel implementation differs,
/// which is the point of the abstraction.
///
/// Scope: the synchronous and goal-triggered strategies (kSyncVanilla /
/// kSyncOverselect / kAsyncGoal). kAsyncTime needs a wall-clock timer
/// service and is standalone-only.
///
/// Timestamps carry wall-clock seconds since the host started; they order
/// messages but are not the virtual-time measurements of the simulator.

/// Hosts the FL server: accepts `expected_clients` connections, routes
/// incoming messages into the Server worker, and routes the worker's
/// outgoing messages to the right connection.
class DistributedServerHost {
 public:
  /// The listener determines the port (use TcpListener::Bind(0) and
  /// publish listener.port() to clients). `transport` timeouts are applied
  /// to every accepted connection; a recv timeout keeps reader threads
  /// responsive without treating idle clients as failed.
  /// ServerOptions::receive_deadline must stay 0 here: the distributed host
  /// detects failure through mid-course EOF, not virtual-time deadlines.
  DistributedServerHost(ServerOptions options, Model global_model,
                        std::unique_ptr<Aggregator> aggregator,
                        TcpListener listener,
                        TransportOptions transport = {});
  ~DistributedServerHost();

  Server* server() { return server_.get(); }

  /// Clients whose connection dropped before the course finished. Each one
  /// was reported to the Server worker as a client_failure event.
  int64_t failed_clients() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failed_clients_;
  }

  /// Retransmitted messages suppressed before reaching the Server worker.
  int64_t duplicates_suppressed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dedup_.suppressed();
  }

  /// Attaches observability sinks (borrowed; must outlive the host) to the
  /// server worker and the outgoing router. Distributed-mode timestamps are
  /// wall seconds, so traces/metrics are not bit-reproducible across runs.
  void set_obs(const ObsContext* obs) {
    obs_ = obs;
    server_->set_obs(obs);
  }

  /// Accepts clients, runs the course to completion, disconnects.
  /// Returns the server stats.
  ServerStats Run();

 private:
  /// Outgoing channel: routes by msg.receiver over the TCP connections.
  class Router;

  void ReaderLoop(int client_id, TcpConnection* connection);
  void PushIncoming(Message msg);

  TcpListener listener_;
  TransportOptions transport_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<Server> server_;
  const ObsContext* obs_ = nullptr;

  /// Set by the event-loop thread once the Server worker finished; readers
  /// use it to tell an orderly course-end hangup from a mid-course failure.
  std::atomic<bool> course_finished_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> incoming_;
  DuplicateSuppressor dedup_;  // guarded by mu_
  int64_t failed_clients_ = 0;  // guarded by mu_
  int eof_count_ = 0;

  std::map<int, TcpConnection> connections_;
  std::mutex send_mu_;
  std::vector<std::thread> readers_;
};

/// Hosts one FL client: connects to the server, joins in, and serves
/// events until the course finishes.
class DistributedClientHost {
 public:
  /// `client_id` must be unique across the federation (1-based) and is
  /// announced to the server in the join_in message. `transport` governs
  /// connect retry/backoff (clients may start before the server's listener
  /// is bound) and socket timeouts; defaults keep the untuned behaviour.
  DistributedClientHost(int client_id, ClientOptions options, Model model,
                        SplitDataset data,
                        std::unique_ptr<BaseTrainer> trainer,
                        const std::string& server_host, int server_port,
                        TransportOptions transport = {});
  ~DistributedClientHost();

  Client* client() { return client_.get(); }

  /// Attaches observability sinks (borrowed; must outlive the host) to the
  /// client worker and the uplink channel.
  void set_obs(const ObsContext* obs);

  /// Joins the course and processes messages until "finish" (or the
  /// connection drops). Returns Ok on a clean finish.
  Status Run();

 private:
  class Uplink;

  std::unique_ptr<Uplink> uplink_;
  std::unique_ptr<Client> client_;
  Status connect_status_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_DISTRIBUTED_H_
