#include "fedscope/core/trainer.h"

#include <algorithm>

#include "fedscope/util/logging.h"

namespace fedscope {

TrainConfig TrainConfig::FromConfig(const Config& config) {
  return FromConfig(config, TrainConfig());
}

TrainConfig TrainConfig::FromConfig(const Config& config, TrainConfig base) {
  base.lr = config.GetDouble("train.lr", base.lr);
  base.local_steps =
      static_cast<int>(config.GetInt("train.local_steps", base.local_steps));
  base.batch_size =
      static_cast<int>(config.GetInt("train.batch_size", base.batch_size));
  base.momentum = config.GetDouble("train.momentum", base.momentum);
  base.weight_decay =
      config.GetDouble("train.weight_decay", base.weight_decay);
  base.prox_mu = config.GetDouble("train.prox_mu", base.prox_mu);
  base.grad_clip = config.GetDouble("train.grad_clip", base.grad_clip);
  return base;
}

void BaseTrainer::UpdateModel(Model* model, const StateDict& global_shared) {
  FS_CHECK_OK(model->LoadStateDict(global_shared));
}

EvalResult BaseTrainer::Evaluate(Model* model, const Dataset& data) {
  return EvaluateClassifier(model, data);
}

StateDict BaseTrainer::GetShareableState(Model* model,
                                         const NameFilter& filter) {
  return model->GetStateDict(filter);
}

std::vector<int64_t> SampleBatchIndices(int64_t dataset_size, int batch_size,
                                        Rng* rng) {
  FS_CHECK_GT(dataset_size, 0);
  std::vector<int64_t> idx(batch_size);
  for (auto& i : idx) i = rng->UniformInt(0, dataset_size - 1);
  return idx;
}

double SgdStepOnBatch(Model* model, Sgd* optimizer, const Tensor& x,
                      const std::vector<int64_t>& labels) {
  SoftmaxCrossEntropy loss;
  model->ZeroGrad();
  Tensor logits = model->Forward(x, /*train=*/true);
  const double batch_loss = loss.Forward(logits, labels);
  model->Backward(loss.Backward());
  optimizer->Step(model);
  return batch_loss;
}

EvalResult EvaluateClassifier(Model* model, const Dataset& data) {
  EvalResult result;
  result.num_examples = data.size();
  if (data.empty()) return result;
  SoftmaxCrossEntropy loss;
  Tensor logits = model->Forward(data.x, /*train=*/false);
  result.loss = loss.Forward(logits, data.labels);
  result.accuracy = Accuracy(logits, data.labels);
  return result;
}

TrainResult GeneralTrainer::Train(Model* model, const Dataset& train,
                                  const TrainConfig& config, Rng* rng) {
  TrainResult result;
  result.local_steps = config.local_steps;
  if (train.empty() || config.local_steps == 0) return result;

  Sgd optimizer(SgdOptions{config.lr, config.momentum, config.weight_decay,
                           config.prox_mu, config.grad_clip});
  if (config.prox_mu > 0.0) {
    // FedProx: proximal point is the model as received from the server.
    optimizer.SetProxCenter(model->GetStateDict());
  }
  double loss_sum = 0.0;
  for (int step = 0; step < config.local_steps; ++step) {
    auto idx = SampleBatchIndices(train.size(), config.batch_size, rng);
    loss_sum += SgdStepOnBatch(model, &optimizer, train.BatchX(idx),
                               train.BatchY(idx));
  }
  result.mean_loss = loss_sum / config.local_steps;
  result.num_samples =
      static_cast<int64_t>(config.local_steps) * config.batch_size;
  return result;
}

}  // namespace fedscope
