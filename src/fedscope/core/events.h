#ifndef FEDSCOPE_CORE_EVENTS_H_
#define FEDSCOPE_CORE_EVENTS_H_

#include <string>
#include <vector>

namespace fedscope {
namespace events {

// ---------------------------------------------------------------------------
// Events related to message passing (paper §3.2, Table 2). Receiving a
// message of type T raises the event named T at the receiver.
// ---------------------------------------------------------------------------

/// Client -> server: request to join the FL course (carries device info).
inline constexpr char kJoinIn[] = "join_in";
/// Server -> client: id assignment / admission acknowledgement.
inline constexpr char kAssignId[] = "assign_id";
/// Server -> client: broadcast of the up-to-date global (shared) model.
inline constexpr char kModelPara[] = "model_para";
/// Client -> server: local model update (delta of the shared part).
inline constexpr char kModelUpdate[] = "model_update";
/// Server -> client: request to evaluate the current model locally.
inline constexpr char kEvaluate[] = "evaluate";
/// Client -> server: local evaluation metrics.
inline constexpr char kMetrics[] = "metrics";
/// Server -> client: the FL course has terminated.
inline constexpr char kFinish[] = "finish";
/// Simulator -> server: a scheduled timer fired (drives "time_up").
inline constexpr char kTimer[] = "timer";
/// Transport/simulator -> server: a participant failed mid-course (its
/// connection dropped, or the fault model declared it dead). Extension
/// beyond the paper's Table 2, so deliberately not in
/// BuiltinMessageEvents (which reproduces the table verbatim).
inline constexpr char kClientFailure[] = "client_failure";
/// Edge aggregator -> root server: one weighted pre-aggregated update
/// covering the aggregator's client shard (hierarchical topologies only;
/// extension beyond Table 2, so not in BuiltinMessageEvents).
inline constexpr char kPartialUpdate[] = "partial_update";
/// Active edge aggregator -> its shard standbys: replicated shard state
/// (heartbeat + hot-standby snapshot). Extension beyond Table 2.
inline constexpr char kShardSnapshot[] = "shard_snapshot";
/// Standby edge aggregator -> root server: the standby presumed its shard's
/// active aggregator dead and took over. Extension beyond Table 2.
inline constexpr char kStandbyPromoted[] = "standby_promoted";

// ---------------------------------------------------------------------------
// Events related to condition checking (paper §3.2). Raised internally by a
// participant when the corresponding condition becomes true.
// ---------------------------------------------------------------------------

/// All sampled clients' updates have been received (synchronous trigger).
inline constexpr char kAllReceived[] = "all_received";
/// The aggregation goal (a configured number of updates) has been reached.
inline constexpr char kGoalAchieved[] = "goal_achieved";
/// The allocated time budget for the training round has run out.
inline constexpr char kTimeUp[] = "time_up";
/// All expected clients have joined the FL course.
inline constexpr char kAllJoinedIn[] = "all_joined_in";
/// The pre-defined early-stop condition is satisfied.
inline constexpr char kEarlyStop[] = "early_stop";
/// The target test accuracy has been reached.
inline constexpr char kTargetReached[] = "target_reached";
/// The received global model degraded this client's local performance.
inline constexpr char kPerformanceDrop[] = "performance_drop";
/// The client's available bandwidth is below its configured threshold;
/// the default handler reduces communication frequency (paper §3.2).
inline constexpr char kLowBandwidth[] = "low_bandwidth";
/// The synchronous receive deadline expired with enough updates buffered:
/// aggregate the partial cohort (graceful degradation; extension beyond
/// Table 2, so deliberately not in BuiltinConditionEvents).
inline constexpr char kReceiveDeadline[] = "receive_deadline";

}  // namespace events

/// Classifies an event name. Unknown names count as condition events
/// (user-defined conditions are expected; user-defined message types should
/// be registered through the message-flow declarations).
enum class EventClass { kMessagePassing, kConditionChecking };
EventClass ClassifyEvent(const std::string& event);

/// All built-in events of each class (for docs / completeness tooling).
std::vector<std::string> BuiltinMessageEvents();
std::vector<std::string> BuiltinConditionEvents();

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_EVENTS_H_
