#ifndef FEDSCOPE_CORE_CLIENT_CACHE_H_
#define FEDSCOPE_CORE_CLIENT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/core/client.h"
#include "fedscope/exec/buffering_channel.h"

namespace fedscope {

/// Counters backing the fs_virtual_* obs gauges (DESIGN.md §13).
struct ClientCacheStats {
  /// Total Client constructions (fresh first touches plus restores).
  int64_t instantiations = 0;
  /// Constructions that replayed a suspended resume payload.
  int64_t restores = 0;
  /// Live clients reclaimed to a resume payload by Trim().
  int64_t evictions = 0;
  /// Currently live clients.
  int64_t live = 0;
  /// High-water mark of `live` over the course.
  int64_t live_peak = 0;
};

/// Bounded LRU cache of live Clients for the virtualized FedRunner
/// (DESIGN.md §13). The population exists only as descriptors; Get(id)
/// instantiates a real Client on demand via the runner-owned factory
/// (re-deriving its options/Rng stream and materializing data lazily) and
/// Trim() reclaims least-recently-used clients beyond capacity, saving
/// their resume payload (Client::ExportResume) so a later Get restores
/// bit-identical state. Capacity is a pure performance knob: any
/// eviction/restore sequence yields the same course, so peak live
/// clients — not correctness — is what it bounds.
class ClientCache {
 public:
  /// A live client plus its threaded-backend port (null when the course
  /// runs on the serial backend).
  struct Entry {
    std::unique_ptr<Client> client;
    std::unique_ptr<BufferingChannel> port;
  };
  /// Builds client `id` exactly as the eager path would (same options,
  /// same forked seed, same channel wiring). Must be deterministic.
  using EntryFactory = std::function<Entry(int id)>;

  /// `capacity` >= 1: Trim never evicts the most recently used client,
  /// so a pointer returned by Get stays valid until the next Get/Trim.
  ClientCache(int population, int capacity, EntryFactory factory);

  int population() const { return population_; }
  int capacity() const { return capacity_; }
  bool IsLive(int id) const { return live_.count(id) > 0; }

  /// Returns the live Client for `id` (1-based), instantiating — and
  /// restoring suspended state, if any — on a miss. Marks `id` most
  /// recently used. Does not trim; callers trim at safe points.
  Client* Get(int id);

  /// Threaded-backend port of a live client; FS_CHECK-fails if not live.
  BufferingChannel* Port(int id);

  /// Records a finish delivery for a non-live client without
  /// instantiating it. Folded into the suspended payload when one
  /// exists; otherwise a one-bit flag (1M finished clients must not cost
  /// 1M payloads).
  void MarkFinished(int id);

  /// Evicts LRU clients beyond capacity, saving resume payloads. Only
  /// call at safe points: after a serial HandleMessage or a parallel
  /// commit, never while a returned Client*/batch is in use.
  void Trim();

  /// Serializes every client with non-fresh state (live ones are
  /// snapshotted via ExportResume without evicting them) for the course
  /// checkpoint (DESIGN.md §10).
  void ExportState(Payload* p);

  /// Restores ExportState output into a cache with no live clients.
  void RestoreState(const Payload& p);

  const ClientCacheStats& stats() const { return stats_; }

 private:
  void EvictOne();

  int population_;
  int capacity_;
  EntryFactory factory_;
  /// Live entries; lru_ orders their ids most-recent-first.
  std::unordered_map<int, Entry> live_;
  std::list<int> lru_;
  std::unordered_map<int, std::list<int>::iterator> lru_pos_;
  /// Resume payloads of evicted clients.
  std::unordered_map<int, Payload> suspended_;
  /// finished-flags for clients that never grew other state; index id,
  /// [0] unused.
  std::vector<uint8_t> finished_;
  ClientCacheStats stats_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_CLIENT_CACHE_H_
