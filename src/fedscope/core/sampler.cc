#include "fedscope/core/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "fedscope/util/logging.h"

namespace fedscope {

CandidateView::CandidateView(int population, std::vector<int> excluded)
    : population_(population), excluded_(std::move(excluded)) {
  FS_CHECK_GE(population_, 0);
  for (size_t i = 0; i < excluded_.size(); ++i) {
    FS_CHECK_GE(excluded_[i], 1);
    FS_CHECK_LE(excluded_[i], population_);
    if (i > 0) FS_CHECK_LT(excluded_[i - 1], excluded_[i]);
  }
}

int CandidateView::IdAt(int idx) const {
  FS_CHECK_GE(idx, 0);
  FS_CHECK_LT(idx, size());
  // The candidate at index idx is idx + 1 + e, where e counts the excluded
  // ids below it. excluded_[e] - e is non-decreasing in e (strictly
  // ascending exclusions), so e is found by binary search: the smallest e
  // with excluded_[e] - e > idx + 1 (treating e == |excluded_| as +inf).
  int lo = 0;
  int hi = static_cast<int>(excluded_.size());
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (excluded_[mid] - mid > idx + 1) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return idx + 1 + lo;
}

std::vector<int> CandidateView::Materialize() const {
  std::vector<int> out;
  out.reserve(size());
  size_t e = 0;
  for (int id = 1; id <= population_; ++id) {
    if (e < excluded_.size() && excluded_[e] == id) {
      ++e;
      continue;
    }
    out.push_back(id);
  }
  return out;
}

std::vector<int> UniformSampler::Sample(const std::vector<int>& candidates,
                                        int k, Rng* rng) {
  const int take = std::min<int>(k, candidates.size());
  auto idx = rng->SampleWithoutReplacement(candidates.size(), take);
  std::vector<int> out(take);
  for (int i = 0; i < take; ++i) out[i] = candidates[idx[i]];
  return out;
}

std::vector<int> UniformSampler::SampleIds(const CandidateView& view, int k,
                                           Rng* rng) {
  const int take = std::min<int>(k, view.size());
  auto idx = rng->SampleWithoutReplacement(view.size(), take);
  std::vector<int> out(take);
  for (int i = 0; i < take; ++i) {
    out[i] = view.IdAt(static_cast<int>(idx[i]));
  }
  return out;
}

std::vector<int> ResponsivenessSampler::Sample(
    const std::vector<int>& candidates, int k, Rng* rng) {
  const int take = std::min<int>(k, candidates.size());
  std::vector<int> pool = candidates;
  std::vector<double> weights(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    // Client ids are 1-based; scores_ is indexed by id - 1. Unknown ids get
    // a neutral weight.
    const int idx = pool[i] - 1;
    const double s = (idx >= 0 && idx < static_cast<int>(scores_.size()))
                         ? scores_[idx]
                         : 1.0;
    weights[i] = std::pow(std::max(s, 1e-9), exponent_);
  }
  std::vector<int> out;
  out.reserve(take);
  for (int draw = 0; draw < take; ++draw) {
    const int64_t pick = rng->Categorical(weights);
    out.push_back(pool[pick]);
    pool.erase(pool.begin() + pick);
    weights.erase(weights.begin() + pick);
  }
  return out;
}

GroupSampler::GroupSampler(std::vector<std::vector<int>> groups)
    : groups_(std::move(groups)) {
  int max_id = 0;
  for (const auto& group : groups_) {
    for (int id : group) max_id = std::max(max_id, id);
  }
  group_of_.assign(max_id + 1, 0);
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (int id : groups_[g]) group_of_[id] = static_cast<int>(g);
  }
}

std::vector<int> GroupSampler::Sample(const std::vector<int>& candidates,
                                      int k, Rng* rng) {
  const int take = std::min<int>(k, candidates.size());
  std::vector<int> out;
  out.reserve(take);
  std::set<int> remaining(candidates.begin(), candidates.end());
  // Cycle groups round-robin, draining each group's idle members first.
  for (size_t attempt = 0; attempt < groups_.size() && !remaining.empty();
       ++attempt) {
    const auto& group = groups_[next_group_];
    next_group_ = (next_group_ + 1) % groups_.size();
    std::vector<int> in_group;
    for (int id : group) {
      if (remaining.count(id) > 0) in_group.push_back(id);
    }
    UniformSampler uniform;
    for (int id : uniform.Sample(in_group, take - out.size(), rng)) {
      out.push_back(id);
      remaining.erase(id);
    }
    if (static_cast<int>(out.size()) >= take) return out;
  }
  // Fill the remainder uniformly from whatever is left.
  std::vector<int> rest(remaining.begin(), remaining.end());
  UniformSampler uniform;
  for (int id : uniform.Sample(rest, take - out.size(), rng)) {
    out.push_back(id);
  }
  return out;
}

void GroupSampler::SaveState(Payload* p, const std::string& prefix) const {
  p->SetInt(prefix + "/next_group", static_cast<int64_t>(next_group_));
}

void GroupSampler::LoadState(const Payload& p, const std::string& prefix) {
  // The round-robin cursor is the only mutable state; groups_ themselves
  // are rebuilt deterministically from the responsiveness scores.
  if (groups_.empty()) return;
  next_group_ = static_cast<size_t>(p.GetInt(prefix + "/next_group")) %
                groups_.size();
}

std::unique_ptr<Sampler> MakeSampler(const std::string& name,
                                     const std::vector<double>& scores,
                                     int num_groups) {
  if (name == "uniform") return std::make_unique<UniformSampler>();
  if (name == "responsiveness") {
    return std::make_unique<ResponsivenessSampler>(scores, 1.0);
  }
  if (name == "responsiveness_inv") {
    return std::make_unique<ResponsivenessSampler>(scores, -1.0);
  }
  if (name == "group") {
    // Build groups from scores: sort ids (1-based) by score descending.
    std::vector<int> order(scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return scores[a] > scores[b]; });
    std::vector<std::vector<int>> groups(std::max(num_groups, 1));
    const size_t per_group =
        (order.size() + groups.size() - 1) / groups.size();
    for (size_t rank = 0; rank < order.size(); ++rank) {
      groups[std::min(rank / per_group, groups.size() - 1)].push_back(
          order[rank] + 1);  // client ids are 1-based
    }
    return std::make_unique<GroupSampler>(std::move(groups));
  }
  FS_LOG(Fatal) << "unknown sampler: " << name;
  return nullptr;
}

}  // namespace fedscope
