#ifndef FEDSCOPE_CORE_WORKER_H_
#define FEDSCOPE_CORE_WORKER_H_

#include <string>

#include "fedscope/comm/channel.h"
#include "fedscope/comm/message.h"
#include "fedscope/core/handler_registry.h"
#include "fedscope/obs/obs_context.h"

namespace fedscope {

/// Base class of FL participants (the paper's BaseWorker). A worker is
/// driven entirely by events: the simulator delivers messages through
/// HandleMessage, which dispatches on the message type; condition events
/// are raised internally through RaiseEvent. Behaviour is attached by
/// registering handlers — subclasses register defaults, users may overwrite
/// them (§3.2).
class BaseWorker {
 public:
  BaseWorker(int id, CommChannel* channel) : id_(id), channel_(channel) {}
  virtual ~BaseWorker() = default;

  BaseWorker(const BaseWorker&) = delete;
  BaseWorker& operator=(const BaseWorker&) = delete;

  int id() const { return id_; }
  HandlerRegistry& registry() { return registry_; }
  const HandlerRegistry& registry() const { return registry_; }

  /// Delivers a message: advances this worker's virtual clock to the
  /// message timestamp and dispatches the event named by the message type.
  /// Messages without a registered handler are logged and dropped (a
  /// warning, not an error: user-defined courses may ignore some types).
  void HandleMessage(const Message& msg);

  /// Raises a condition-checking event; the context message provides the
  /// timestamp and any payload the handler needs.
  void RaiseEvent(const std::string& event, const Message& context);

  /// This worker's current virtual time (timestamp of the last message).
  double current_time() const { return current_time_; }

  /// Attaches observability sinks (borrowed; must outlive the worker; null
  /// restores the no-op default). Subclass handlers consult `obs()` for
  /// metric / trace / course-log instrumentation.
  void set_obs(const ObsContext* obs) { obs_ = obs; }
  const ObsContext* obs() const { return obs_; }

 protected:
  /// Sends a message, stamping the sender id. The timestamp must not be in
  /// the sender's past.
  void Send(Message msg);

  int id_;
  CommChannel* channel_;
  HandlerRegistry registry_;
  double current_time_ = 0.0;
  const ObsContext* obs_ = nullptr;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_WORKER_H_
