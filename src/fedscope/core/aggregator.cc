#include "fedscope/core/aggregator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {

std::vector<double> UpdateWeights(const std::vector<ClientUpdate>& updates,
                                  double staleness_rho) {
  std::vector<double> weights(updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    double w = std::max(updates[i].num_samples, 1e-9);
    if (staleness_rho > 0.0) {
      w *= std::pow(1.0 + std::max(updates[i].staleness, 0),
                    -staleness_rho);
    }
    weights[i] = w;
  }
  return weights;
}

namespace {

/// Sample+staleness weighted average of deltas.
StateDict AverageDeltas(const std::vector<ClientUpdate>& updates,
                        double staleness_rho) {
  std::vector<const StateDict*> deltas;
  deltas.reserve(updates.size());
  for (const auto& u : updates) deltas.push_back(&u.delta);
  return SdWeightedAverage(deltas, UpdateWeights(updates, staleness_rho));
}

}  // namespace

Result<StateDict> FedAvgAggregator::Aggregate(
    const StateDict& global, const std::vector<ClientUpdate>& updates) {
  if (updates.empty()) {
    return Status::FailedPrecondition("fedavg: no usable updates");
  }
  StateDict avg = AverageDeltas(updates, options_.staleness_rho);
  StateDict next = global;
  SdAxpy(&next, static_cast<float>(options_.server_lr), avg);
  return next;
}

Result<StateDict> FedOptAggregator::Aggregate(
    const StateDict& global, const std::vector<ClientUpdate>& updates) {
  if (updates.empty()) {
    return Status::FailedPrecondition("fedopt: no usable updates");
  }
  StateDict avg = AverageDeltas(updates, staleness_rho_);
  if (momentum_.empty()) {
    momentum_ = avg;
  } else {
    // m = beta * m + delta_avg
    StateDict scaled = SdScale(momentum_, static_cast<float>(server_momentum_));
    momentum_ = SdAdd(scaled, avg);
  }
  StateDict next = global;
  SdAxpy(&next, static_cast<float>(server_lr_), momentum_);
  return next;
}

void FedOptAggregator::SaveState(Payload* p,
                                 const std::string& prefix) const {
  // momentum_.empty() vs "momentum of all zeros" differ (first Aggregate
  // *assigns* rather than decays), so emptiness is recorded explicitly.
  p->SetInt(prefix + "/has_momentum", momentum_.empty() ? 0 : 1);
  if (!momentum_.empty()) p->SetStateDict(prefix + "/momentum", momentum_);
}

void FedOptAggregator::LoadState(const Payload& p, const std::string& prefix) {
  if (p.GetInt(prefix + "/has_momentum") != 0) {
    momentum_ = p.GetStateDict(prefix + "/momentum");
  } else {
    momentum_.clear();
  }
}

Result<StateDict> FedNovaAggregator::Aggregate(
    const StateDict& global, const std::vector<ClientUpdate>& updates) {
  if (updates.empty()) {
    return Status::FailedPrecondition("fednova: no usable updates");
  }
  // Normalize each delta by its local step count, average with sample
  // weights, then rescale by the weighted-average step count.
  std::vector<StateDict> normalized;
  normalized.reserve(updates.size());
  std::vector<const StateDict*> ptrs;
  std::vector<double> weights;
  double weighted_steps = 0.0, total_weight = 0.0;
  for (const auto& u : updates) {
    const double steps = std::max(u.local_steps, 1);
    normalized.push_back(SdScale(u.delta, static_cast<float>(1.0 / steps)));
    const double w = std::max(u.num_samples, 1e-9);
    weights.push_back(w);
    weighted_steps += w * steps;
    total_weight += w;
  }
  for (const auto& n : normalized) ptrs.push_back(&n);
  StateDict avg = SdWeightedAverage(ptrs, weights);
  const double tau_eff = weighted_steps / total_weight;
  StateDict next = global;
  SdAxpy(&next, static_cast<float>(tau_eff), avg);
  return next;
}

Result<StateDict> KrumAggregator::Aggregate(
    const StateDict& global, const std::vector<ClientUpdate>& updates) {
  const int n = static_cast<int>(updates.size());
  if (n == 0) return Status::FailedPrecondition("krum: no usable updates");
  last_selection_.clear();

  std::vector<std::vector<float>> flat(n);
  for (int i = 0; i < n; ++i) flat[i] = SdFlatten(updates[i].delta);

  // Pairwise squared distances.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < flat[i].size(); ++k) {
        const double d = static_cast<double>(flat[i][k]) - flat[j][k];
        acc += d * d;
      }
      dist[i][j] = dist[j][i] = acc;
    }
  }

  // Krum score: sum of distances to the n - f - 2 closest other updates.
  const int closest = std::max(1, n - num_malicious_ - 2);
  std::vector<std::pair<double, int>> scored(n);
  for (int i = 0; i < n; ++i) {
    std::vector<double> row;
    row.reserve(n - 1);
    for (int j = 0; j < n; ++j) {
      if (j != i) row.push_back(dist[i][j]);
    }
    std::sort(row.begin(), row.end());
    double score = 0.0;
    for (int k = 0; k < std::min<int>(closest, row.size()); ++k) {
      score += row[k];
    }
    scored[i] = {score, i};
  }
  std::sort(scored.begin(), scored.end());

  const int keep = std::min(multi_k_, n);
  std::vector<ClientUpdate> selected;
  for (int k = 0; k < keep; ++k) {
    last_selection_.push_back(scored[k].second);
    selected.push_back(updates[scored[k].second]);
  }
  StateDict avg = AverageDeltas(selected, /*staleness_rho=*/0.0);
  StateDict next = global;
  SdAxpy(&next, 1.0f, avg);
  return next;
}

namespace {

/// Applies a per-coordinate reducer over updates and adds to global. An
/// update missing a delta key is hostile or corrupt input, not a
/// programmer error, so it surfaces as a Status.
template <typename Reducer>
Result<StateDict> CoordinateWise(const StateDict& global,
                                 const std::vector<ClientUpdate>& updates,
                                 Reducer reduce) {
  if (updates.empty()) {
    return Status::FailedPrecondition("coordinate-wise: no usable updates");
  }
  StateDict next = global;
  std::vector<float> column(updates.size());
  for (auto& [name, tensor] : next) {
    for (int64_t k = 0; k < tensor.numel(); ++k) {
      for (size_t u = 0; u < updates.size(); ++u) {
        const auto it = updates[u].delta.find(name);
        if (it == updates[u].delta.end() || it->second.numel() != tensor.numel()) {
          return Status::InvalidArgument("update from client " +
                                         std::to_string(updates[u].client_id) +
                                         " missing delta key " + name);
        }
        column[u] = it->second.at(k);
      }
      tensor.at(k) += reduce(&column);
    }
  }
  return next;
}

}  // namespace

Result<StateDict> TrimmedMeanAggregator::Aggregate(
    const StateDict& global, const std::vector<ClientUpdate>& updates) {
  const int n = static_cast<int>(updates.size());
  const int trim = std::min(static_cast<int>(trim_frac_ * n), (n - 1) / 2);
  return CoordinateWise(global, updates, [trim](std::vector<float>* column) {
    std::sort(column->begin(), column->end());
    double acc = 0.0;
    int count = 0;
    for (int i = trim; i < static_cast<int>(column->size()) - trim; ++i) {
      acc += (*column)[i];
      ++count;
    }
    return static_cast<float>(acc / std::max(count, 1));
  });
}

Result<StateDict> MedianAggregator::Aggregate(
    const StateDict& global, const std::vector<ClientUpdate>& updates) {
  return CoordinateWise(global, updates, [](std::vector<float>* column) {
    std::sort(column->begin(), column->end());
    const size_t n = column->size();
    if (n % 2 == 1) return (*column)[n / 2];
    return 0.5f * ((*column)[n / 2 - 1] + (*column)[n / 2]);
  });
}

}  // namespace fedscope
