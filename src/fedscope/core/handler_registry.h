#ifndef FEDSCOPE_CORE_HANDLER_REGISTRY_H_
#define FEDSCOPE_CORE_HANDLER_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// Binds events to handlers for one participant (paper §3.2 / Figure 4).
///
/// Conflict resolution follows the paper's "overwriting" principle: each
/// event is linked to exactly one handler; registering a second handler for
/// an event logs a warning and the latest registration wins (so defaults
/// are overridden by user customizations). The effective bindings can be
/// listed for the experiment log.
class HandlerRegistry {
 public:
  using Handler = std::function<void(const Message&)>;

  /// Registers `handler` for `event`. `emits` declares which message types
  /// this handler may send as a consequence — the message-flow metadata
  /// consumed by the completeness checker (Appendix E). Returns true if a
  /// previous handler was overwritten.
  bool Register(const std::string& event, Handler handler,
                std::vector<std::string> emits = {});

  /// Removes the handler for `event` (paper: "users can remove some
  /// handlers ... to make sure the intended handlers take effect").
  bool Unregister(const std::string& event);

  bool Has(const std::string& event) const;

  /// Invokes the handler bound to `event`; NotFound if none.
  Status Dispatch(const std::string& event, const Message& msg) const;

  /// Events with handlers, in registration order (effective bindings).
  std::vector<std::string> RegisteredEvents() const;

  /// Declared message flows: event -> message types the handler emits.
  const std::map<std::string, std::vector<std::string>>& Flows() const {
    return flows_;
  }

  /// Number of times registration overwrote an existing handler.
  int overwrite_count() const { return overwrite_count_; }

 private:
  std::map<std::string, Handler> handlers_;
  std::map<std::string, std::vector<std::string>> flows_;
  std::vector<std::string> order_;
  int overwrite_count_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_CORE_HANDLER_REGISTRY_H_
