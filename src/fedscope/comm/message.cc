#include "fedscope/comm/message.h"

#include <sstream>

namespace fedscope {

int64_t Payload::GetInt(const std::string& key, int64_t def) const {
  auto it = scalars_.find(key);
  if (it == scalars_.end()) return def;
  if (std::holds_alternative<int64_t>(it->second)) {
    return std::get<int64_t>(it->second);
  }
  if (std::holds_alternative<double>(it->second)) {
    return static_cast<int64_t>(std::get<double>(it->second));
  }
  return def;
}

double Payload::GetDouble(const std::string& key, double def) const {
  auto it = scalars_.find(key);
  if (it == scalars_.end()) return def;
  if (std::holds_alternative<double>(it->second)) {
    return std::get<double>(it->second);
  }
  if (std::holds_alternative<int64_t>(it->second)) {
    return static_cast<double>(std::get<int64_t>(it->second));
  }
  return def;
}

std::string Payload::GetString(const std::string& key,
                               const std::string& def) const {
  auto it = scalars_.find(key);
  if (it == scalars_.end()) return def;
  if (std::holds_alternative<std::string>(it->second)) {
    return std::get<std::string>(it->second);
  }
  return def;
}

Result<Tensor> Payload::GetTensor(const std::string& key) const {
  auto it = tensors_.find(key);
  if (it == tensors_.end()) {
    return Status::NotFound("payload tensor: " + key);
  }
  return it->second;
}

void Payload::SetStateDict(const std::string& prefix, const StateDict& state) {
  for (const auto& [name, tensor] : state) {
    tensors_[prefix + "/" + name] = tensor;
  }
}

StateDict Payload::GetStateDict(const std::string& prefix) const {
  StateDict state;
  const std::string full_prefix = prefix + "/";
  for (const auto& [key, tensor] : tensors_) {
    if (key.rfind(full_prefix, 0) == 0) {
      state[key.substr(full_prefix.size())] = tensor;
    }
  }
  return state;
}

void Payload::Merge(const Payload& other) {
  for (const auto& [key, value] : other.scalars_) scalars_[key] = value;
  for (const auto& [key, tensor] : other.tensors_) tensors_[key] = tensor;
}

int64_t Payload::ByteSize() const {
  int64_t bytes = 0;
  for (const auto& [key, value] : scalars_) {
    bytes += static_cast<int64_t>(key.size()) + 16;
    if (std::holds_alternative<std::string>(value)) {
      bytes += static_cast<int64_t>(std::get<std::string>(value).size());
    }
  }
  for (const auto& [key, tensor] : tensors_) {
    bytes += static_cast<int64_t>(key.size()) + 16 +
             tensor.numel() * static_cast<int64_t>(sizeof(float)) +
             tensor.ndim() * 8;
  }
  return bytes;
}

std::string MessageSummary(const Message& msg) {
  std::ostringstream os;
  os << "Message{type=" << msg.msg_type << ", " << msg.sender << "->"
     << msg.receiver << ", state=" << msg.state << ", t=" << msg.timestamp
     << ", tensors=" << msg.payload.tensors().size()
     << ", scalars=" << msg.payload.scalars().size() << "}";
  return os.str();
}

}  // namespace fedscope
