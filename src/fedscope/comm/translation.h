#ifndef FEDSCOPE_COMM_TRANSLATION_H_
#define FEDSCOPE_COMM_TRANSLATION_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "fedscope/comm/message.h"
#include "fedscope/nn/model.h"

namespace fedscope {

/// Cross-backend FL support (paper §3.5). Each participant may run a
/// different ML backend with its own native parameter representation; the
/// pre-agreed consensus is the Payload format (an array of name/value
/// pairs). A Backend implements *encoding* (native -> Payload state dict)
/// and *decoding* (Payload state dict -> native).
///
/// The default RowMajorBackend matches fedscope/nn directly. The library
/// also ships a TransposedBackend that stores every 2-D parameter
/// transposed — a stand-in for "a different framework's memory layout" —
/// to demonstrate that participants on different backends interoperate
/// as long as they agree on the message format.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::string Name() const = 0;

  /// Converts a native state dict into the backend-independent consensus
  /// format ("encoding").
  virtual StateDict EncodeState(const StateDict& native) const = 0;

  /// Converts a consensus-format state dict into the native representation
  /// ("decoding").
  virtual StateDict DecodeState(const StateDict& consensus) const = 0;
};

/// Identity mapping: the native representation is the consensus format.
class RowMajorBackend : public Backend {
 public:
  std::string Name() const override { return "row_major"; }
  StateDict EncodeState(const StateDict& native) const override;
  StateDict DecodeState(const StateDict& consensus) const override;
};

/// Stores 2-D tensors transposed natively; transposes on encode/decode.
class TransposedBackend : public Backend {
 public:
  std::string Name() const override { return "transposed"; }
  StateDict EncodeState(const StateDict& native) const override;
  StateDict DecodeState(const StateDict& consensus) const override;
};

/// Registry of available backends by name.
class BackendRegistry {
 public:
  /// Built-in backends pre-registered.
  BackendRegistry();

  void Register(std::unique_ptr<Backend> backend);
  /// nullptr if unknown.
  const Backend* Find(const std::string& name) const;

 private:
  std::map<std::string, std::unique_ptr<Backend>> backends_;
};

/// Transposes a 2-D tensor (identity for other ranks).
Tensor Transpose2d(const Tensor& t);

}  // namespace fedscope

#endif  // FEDSCOPE_COMM_TRANSLATION_H_
