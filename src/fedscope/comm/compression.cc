#include "fedscope/comm/compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

/// Shapes ride along as small float tensors (dims are < 2^24, exact).
Tensor ShapeTensor(const Tensor& t) {
  std::vector<float> dims(t.ndim());
  for (int d = 0; d < t.ndim(); ++d) {
    dims[d] = static_cast<float>(t.dim(d));
  }
  return Tensor::FromVector(dims);
}

std::vector<int64_t> ShapeFromTensor(const Tensor& t) {
  std::vector<int64_t> shape(t.numel());
  for (int64_t d = 0; d < t.numel(); ++d) {
    shape[d] = static_cast<int64_t>(t.at(d));
  }
  return shape;
}

}  // namespace

Payload QuantizeStateDict(const StateDict& state) {
  Payload payload;
  payload.SetString("codec", "quant8");
  for (const auto& [name, tensor] : state) {
    float lo = tensor.numel() > 0 ? tensor.at(0) : 0.0f;
    float hi = lo;
    for (int64_t i = 1; i < tensor.numel(); ++i) {
      lo = std::min(lo, tensor.at(i));
      hi = std::max(hi, tensor.at(i));
    }
    const float range = std::max(hi - lo, 1e-12f);
    std::string codes(tensor.numel(), '\0');
    for (int64_t i = 0; i < tensor.numel(); ++i) {
      const float t = (tensor.at(i) - lo) / range;
      codes[i] = static_cast<char>(static_cast<uint8_t>(
          std::lround(t * 255.0f)));
    }
    payload.SetString("q/" + name + "/codes", std::move(codes));
    payload.SetDouble("q/" + name + "/lo", lo);
    payload.SetDouble("q/" + name + "/hi", hi);
    payload.SetTensor("q/" + name + "/shape", ShapeTensor(tensor));
  }
  return payload;
}

Result<StateDict> DequantizeStateDict(const Payload& payload) {
  if (payload.GetString("codec") != "quant8") {
    return Status::InvalidArgument("not a quant8 payload");
  }
  StateDict state;
  for (const auto& [key, tensor] : payload.tensors()) {
    // Keys look like "q/<name>/shape".
    if (key.rfind("q/", 0) != 0 ||
        key.size() < 8 ||
        key.substr(key.size() - 6) != "/shape") {
      continue;
    }
    const std::string name = key.substr(2, key.size() - 2 - 6);
    const std::string codes = payload.GetString("q/" + name + "/codes");
    const double lo = payload.GetDouble("q/" + name + "/lo");
    const double hi = payload.GetDouble("q/" + name + "/hi");
    std::vector<int64_t> shape = ShapeFromTensor(tensor);
    if (ShapeNumel(shape) != static_cast<int64_t>(codes.size())) {
      return Status::DataLoss("quant8 code length mismatch for " + name);
    }
    Tensor out(shape);
    const double range = std::max(hi - lo, 1e-12);
    for (int64_t i = 0; i < out.numel(); ++i) {
      const uint8_t code = static_cast<uint8_t>(codes[i]);
      out.at(i) = static_cast<float>(lo + range * code / 255.0);
    }
    state[name] = std::move(out);
  }
  if (state.empty()) return Status::DataLoss("empty quant8 payload");
  return state;
}

Payload SparsifyStateDict(const StateDict& state, double keep_frac) {
  FS_CHECK_GT(keep_frac, 0.0);
  FS_CHECK_LE(keep_frac, 1.0);
  Payload payload;
  payload.SetString("codec", "topk");
  for (const auto& [name, tensor] : state) {
    const int64_t k = std::max<int64_t>(
        1, static_cast<int64_t>(keep_frac * tensor.numel()));
    std::vector<int64_t> order(tensor.numel());
    for (int64_t i = 0; i < tensor.numel(); ++i) order[i] = i;
    std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                     [&](int64_t a, int64_t b) {
                       return std::fabs(tensor.at(a)) >
                              std::fabs(tensor.at(b));
                     });
    order.resize(k);
    std::sort(order.begin(), order.end());

    std::string indices(k * sizeof(uint32_t), '\0');
    std::vector<float> values(k);
    for (int64_t i = 0; i < k; ++i) {
      const uint32_t idx = static_cast<uint32_t>(order[i]);
      std::memcpy(indices.data() + i * sizeof(uint32_t), &idx,
                  sizeof(uint32_t));
      values[i] = tensor.at(order[i]);
    }
    payload.SetString("s/" + name + "/indices", std::move(indices));
    payload.SetTensor("s/" + name + "/values",
                      Tensor::FromVector(values));
    payload.SetTensor("s/" + name + "/shape", ShapeTensor(tensor));
  }
  return payload;
}

Result<StateDict> DesparsifyStateDict(const Payload& payload) {
  if (payload.GetString("codec") != "topk") {
    return Status::InvalidArgument("not a topk payload");
  }
  StateDict state;
  for (const auto& [key, tensor] : payload.tensors()) {
    if (key.rfind("s/", 0) != 0 ||
        key.size() < 8 ||
        key.substr(key.size() - 6) != "/shape") {
      continue;
    }
    const std::string name = key.substr(2, key.size() - 2 - 6);
    const std::string indices =
        payload.GetString("s/" + name + "/indices");
    auto values = payload.GetTensor("s/" + name + "/values");
    if (!values.ok()) return values.status();
    if (indices.size() != values->numel() * sizeof(uint32_t)) {
      return Status::DataLoss("topk index length mismatch for " + name);
    }
    Tensor out(ShapeFromTensor(tensor));
    for (int64_t i = 0; i < values->numel(); ++i) {
      uint32_t idx = 0;
      std::memcpy(&idx, indices.data() + i * sizeof(uint32_t),
                  sizeof(uint32_t));
      if (static_cast<int64_t>(idx) >= out.numel()) {
        return Status::DataLoss("topk index out of range for " + name);
      }
      out.at(idx) = values->at(i);
    }
    state[name] = std::move(out);
  }
  if (state.empty()) return Status::DataLoss("empty topk payload");
  return state;
}

int64_t CompressedBytes(const Payload& payload) {
  return payload.ByteSize();
}

}  // namespace fedscope
