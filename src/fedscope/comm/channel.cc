#include "fedscope/comm/channel.h"

#include "fedscope/comm/codec.h"
#include "fedscope/util/logging.h"

namespace fedscope {

void QueueChannel::Send(const Message& msg) {
  if (obs_ != nullptr) obs_->OnChannelSend(msg);
  if (through_wire_) {
    auto decoded = DecodeMessage(EncodeMessage(msg));
    FS_CHECK(decoded.ok()) << decoded.status().ToString();
    queue_.push_back(std::move(decoded.value()));
  } else {
    queue_.push_back(msg);
  }
}

Message QueueChannel::Pop() {
  FS_CHECK(!queue_.empty());
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

}  // namespace fedscope
