#ifndef FEDSCOPE_COMM_CODEC_H_
#define FEDSCOPE_COMM_CODEC_H_

#include <cstdint>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// Binary wire format for messages (the *encoding* half of the paper's
/// message-translation mechanism, §3.5). The format is backend- and
/// platform-independent: little-endian, explicit tags and lengths, no
/// in-memory layout assumptions. Decode validates all lengths and returns
/// an error Status on malformed input rather than crashing.
///
/// Layout:
///   magic "FSMG" | version u16 | sender i32 | receiver i32 |
///   msg_type (str) | state i32 | timestamp f64 |
///   n_scalars u32 | { key(str) tag(u8) value } * |
///   n_tensors u32 | { key(str) ndim u8 dims(i64*) data(f32*) } *
/// Strings are u32 length + bytes.
std::vector<uint8_t> EncodeMessage(const Message& msg);
Result<Message> DecodeMessage(const std::vector<uint8_t>& bytes);

/// Payload-only encode/decode (used by privacy plug-ins that transform
/// payloads before sending, e.g. message partitioning into frames).
std::vector<uint8_t> EncodePayload(const Payload& payload);
Result<Payload> DecodePayload(const std::vector<uint8_t>& bytes);

/// Exact encoded sizes, computed without encoding. Encode* reserves these
/// up front so the send path does a single allocation; also usable by
/// response models that cost a message before serializing it.
size_t EncodedMessageSize(const Message& msg);
size_t EncodedPayloadSize(const Payload& payload);

/// Message partitioning into frames (paper §4.1: "the messages would be
/// partitioned into several frames" before sharing). Each frame carries a
/// header (frame index, frame count, total size) so frames can be
/// reassembled out of order; reassembly validates completeness and
/// consistency.
struct Frame {
  uint32_t index = 0;
  uint32_t count = 1;
  uint64_t total_bytes = 0;
  std::vector<uint8_t> data;
};

/// Splits an encoded message into frames of at most `max_frame_bytes`
/// payload bytes each (at least one frame).
std::vector<Frame> SplitIntoFrames(const std::vector<uint8_t>& bytes,
                                   size_t max_frame_bytes);

/// Reassembles frames (any order) into the original byte stream. Errors
/// on missing/duplicate/inconsistent frames.
Result<std::vector<uint8_t>> ReassembleFrames(std::vector<Frame> frames);

}  // namespace fedscope

#endif  // FEDSCOPE_COMM_CODEC_H_
