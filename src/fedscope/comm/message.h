#ifndef FEDSCOPE_COMM_MESSAGE_H_
#define FEDSCOPE_COMM_MESSAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "fedscope/nn/model.h"
#include "fedscope/tensor/tensor.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// Backend-independent message content (paper §3.5, "message translation"):
/// a flat tree of named scalars and named tensors. Everything participants
/// exchange — model parameters, gradients, metrics, public keys, sampled
/// hyperparameter configurations — is expressed as a Payload before being
/// put on the wire, so that participants with different local backends can
/// interoperate.
class Payload {
 public:
  using Scalar = std::variant<int64_t, double, std::string>;

  Payload() = default;

  // -- scalars --------------------------------------------------------------
  void SetInt(const std::string& key, int64_t v) { scalars_[key] = v; }
  void SetDouble(const std::string& key, double v) { scalars_[key] = v; }
  void SetString(const std::string& key, std::string v) {
    scalars_[key] = std::move(v);
  }
  bool HasScalar(const std::string& key) const {
    return scalars_.count(key) > 0;
  }
  int64_t GetInt(const std::string& key, int64_t def = 0) const;
  double GetDouble(const std::string& key, double def = 0.0) const;
  std::string GetString(const std::string& key,
                        const std::string& def = "") const;

  // -- tensors ---------------------------------------------------------------
  void SetTensor(const std::string& key, Tensor t) {
    tensors_[key] = std::move(t);
  }
  bool HasTensor(const std::string& key) const {
    return tensors_.count(key) > 0;
  }
  /// Drops a tensor entry; returns true when it existed. Payload-mutating
  /// decorators (e.g. hostile-client fault injection) rename entries by
  /// remove + re-add.
  bool RemoveTensor(const std::string& key) { return tensors_.erase(key) > 0; }
  Result<Tensor> GetTensor(const std::string& key) const;

  /// Stores a whole state dict under a key prefix ("<prefix>/<param-name>").
  void SetStateDict(const std::string& prefix, const StateDict& state);
  /// Recovers a state dict stored under the prefix.
  StateDict GetStateDict(const std::string& prefix) const;

  /// Copies every entry of `other` into this payload (other wins on key
  /// collisions). Used by message-transform plug-ins that wrap a payload
  /// produced elsewhere (e.g. compressed updates).
  void Merge(const Payload& other);

  const std::map<std::string, Scalar>& scalars() const { return scalars_; }
  const std::map<std::string, Tensor>& tensors() const { return tensors_; }

  /// Approximate wire size in bytes (used by the network latency model).
  int64_t ByteSize() const;

  bool operator==(const Payload& other) const {
    return scalars_ == other.scalars_ && tensors_ == other.tensors_;
  }

 private:
  std::map<std::string, Scalar> scalars_;
  std::map<std::string, Tensor> tensors_;
};

/// Well-known participant id for the server.
inline constexpr int kServerId = 0;
/// Receiver id meaning "broadcast to all clients".
inline constexpr int kBroadcast = -1;

/// A message exchanged between participants. `msg_type` names the event that
/// receiving this message raises at the receiver ("receiving_<msg_type>" in
/// paper terms). `state` carries the training-round the sender was in, which
/// the server uses to compute staleness. `timestamp` is virtual time
/// (seconds) assigned by the simulator.
struct Message {
  int sender = 0;
  int receiver = 0;
  std::string msg_type;
  int state = 0;
  double timestamp = 0.0;
  Payload payload;
};

/// Human-readable one-line summary, for logs.
std::string MessageSummary(const Message& msg);

}  // namespace fedscope

#endif  // FEDSCOPE_COMM_MESSAGE_H_
