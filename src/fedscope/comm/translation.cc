#include "fedscope/comm/translation.h"

#include "fedscope/util/logging.h"

namespace fedscope {

Tensor Transpose2d(const Tensor& t) {
  if (t.ndim() != 2) return t;
  const int64_t rows = t.dim(0), cols = t.dim(1);
  Tensor out({cols, rows});
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) out.at(j, i) = t.at(i, j);
  }
  return out;
}

StateDict RowMajorBackend::EncodeState(const StateDict& native) const {
  return native;
}

StateDict RowMajorBackend::DecodeState(const StateDict& consensus) const {
  return consensus;
}

StateDict TransposedBackend::EncodeState(const StateDict& native) const {
  StateDict out;
  for (const auto& [name, tensor] : native) out[name] = Transpose2d(tensor);
  return out;
}

StateDict TransposedBackend::DecodeState(const StateDict& consensus) const {
  StateDict out;
  for (const auto& [name, tensor] : consensus) out[name] = Transpose2d(tensor);
  return out;
}

BackendRegistry::BackendRegistry() {
  Register(std::make_unique<RowMajorBackend>());
  Register(std::make_unique<TransposedBackend>());
}

void BackendRegistry::Register(std::unique_ptr<Backend> backend) {
  const std::string name = backend->Name();
  backends_[name] = std::move(backend);
}

const Backend* BackendRegistry::Find(const std::string& name) const {
  auto it = backends_.find(name);
  return it == backends_.end() ? nullptr : it->second.get();
}

}  // namespace fedscope
