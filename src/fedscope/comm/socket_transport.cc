#include "fedscope/comm/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "fedscope/comm/codec.h"
#include "fedscope/util/logging.h"
#include "fedscope/util/rng.h"

namespace fedscope {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

// --------------------------------------------------------------------------
// TcpConnection
// --------------------------------------------------------------------------

Result<TcpConnection> TcpConnection::Connect(const std::string& host,
                                             int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("connect");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

Result<TcpConnection> TcpConnection::ConnectWithRetry(
    const std::string& host, int port, const TransportOptions& options) {
  Rng jitter(options.retry_seed);
  const int attempts = std::max(options.connect_attempts, 1);
  Status last = Status::Internal("no connect attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      double delay_ms = static_cast<double>(options.retry_base_delay_ms);
      for (int i = 1; i < attempt; ++i) delay_ms *= 2.0;
      delay_ms = std::min(delay_ms,
                          static_cast<double>(options.retry_max_delay_ms));
      delay_ms *= jitter.Uniform(0.5, 1.5);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
    auto conn = Connect(host, port);
    if (conn.ok()) {
      FS_RETURN_IF_ERROR(
          conn->SetTimeouts(options.send_timeout, options.recv_timeout));
      return conn;
    }
    last = conn.status();
  }
  return last;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    max_frame_bytes_ = other.max_frame_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

Status TcpConnection::SetTimeouts(double send_seconds, double recv_seconds) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  const auto set = [this](int opt, double seconds) -> Status {
    if (seconds <= 0.0) return Status::Ok();
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    if (::setsockopt(fd_, SOL_SOCKET, opt, &tv, sizeof(tv)) != 0) {
      return Errno("setsockopt");
    }
    return Status::Ok();
  };
  FS_RETURN_IF_ERROR(set(SO_SNDTIMEO, send_seconds));
  return set(SO_RCVTIMEO, recv_seconds);
}

TcpConnection::~TcpConnection() { Close(); }

void TcpConnection::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpConnection::WriteAll(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd_, p + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status TcpConnection::ReadAll(void* data, size_t size) {
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n == 0) return Status::DataLoss("connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired. With no bytes of this read consumed the
        // peer is merely idle (retryable); a partial read means the
        // stream is truncated mid-object.
        return got == 0 ? Status::DeadlineExceeded("recv timeout")
                        : Status::DataLoss("recv timeout mid-frame");
      }
      return Errno("recv");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status TcpConnection::SendMessage(const Message& msg) {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  const std::vector<uint8_t> bytes = EncodeMessage(msg);
  const uint32_t length = static_cast<uint32_t>(bytes.size());
  FS_RETURN_IF_ERROR(WriteAll(&length, sizeof(length)));
  return WriteAll(bytes.data(), bytes.size());
}

Result<Message> TcpConnection::ReceiveMessage() {
  if (fd_ < 0) return Status::FailedPrecondition("connection closed");
  uint32_t length = 0;
  // A recv timeout while waiting for the length prefix propagates as
  // DeadlineExceeded (idle between messages, retryable).
  FS_RETURN_IF_ERROR(ReadAll(&length, sizeof(length)));
  // Validate the prefix before allocating: a hostile or corrupt frame must
  // not drive a multi-GB allocation.
  if (length > max_frame_bytes_) {
    return Status::DataLoss("oversized frame: " + std::to_string(length));
  }
  std::vector<uint8_t> bytes(length);
  Status body = ReadAll(bytes.data(), bytes.size());
  if (!body.ok()) {
    // Once the length prefix is consumed, any timeout truncates the frame.
    if (body.code() == StatusCode::kDeadlineExceeded) {
      return Status::DataLoss("recv timeout mid-frame");
    }
    return body;
  }
  return DecodeMessage(bytes);
}

// --------------------------------------------------------------------------
// TcpListener
// --------------------------------------------------------------------------

Result<TcpListener> TcpListener::Bind(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("bind");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Errno("getsockname");
  }
  return TcpListener(fd, ntohs(addr.sin_port));
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpConnection> TcpListener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("listener closed");
  const int client_fd = ::accept(fd_, nullptr, nullptr);
  if (client_fd < 0) return Errno("accept");
  int one = 1;
  ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(client_fd);
}

}  // namespace fedscope
