#ifndef FEDSCOPE_COMM_SOCKET_TRANSPORT_H_
#define FEDSCOPE_COMM_SOCKET_TRANSPORT_H_

#include <memory>
#include <string>

#include "fedscope/comm/message.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// TCP transport for distributed mode: the same wire format used by the
/// standalone simulator (comm/codec.h), framed with a 4-byte little-endian
/// length prefix, flows over real sockets. Blocking I/O; one connection
/// per participant pair (clients connect to the server).
///
/// Move-only RAII wrapper over a connected socket.
class TcpConnection {
 public:
  /// Connects to host:port ("127.0.0.1" for local federations).
  static Result<TcpConnection> Connect(const std::string& host, int port);

  /// Adopts an already-connected file descriptor (from TcpListener).
  explicit TcpConnection(int fd) : fd_(fd) {}
  TcpConnection(TcpConnection&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  ~TcpConnection();

  bool valid() const { return fd_ >= 0; }

  /// Encodes and writes one message (length-prefixed). Thread-compatible:
  /// callers must serialize concurrent sends on the same connection.
  Status SendMessage(const Message& msg);

  /// Blocks until a full message arrives. DataLoss with message
  /// "connection closed" on orderly EOF.
  Result<Message> ReceiveMessage();

  /// Shuts down and closes the socket (idempotent).
  void Close();

 private:
  Status WriteAll(const void* data, size_t size);
  Status ReadAll(void* data, size_t size);

  int fd_ = -1;
};

/// Listening socket; Accept yields TcpConnections.
class TcpListener {
 public:
  /// Binds to 127.0.0.1:port; port 0 picks an ephemeral port (see port()).
  static Result<TcpListener> Bind(int port);

  explicit TcpListener(int fd, int port) : fd_(fd), port_(port) {}
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  int port() const { return port_; }

  Result<TcpConnection> Accept();
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_COMM_SOCKET_TRANSPORT_H_
