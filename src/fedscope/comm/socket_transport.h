#ifndef FEDSCOPE_COMM_SOCKET_TRANSPORT_H_
#define FEDSCOPE_COMM_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "fedscope/comm/message.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// Hard cap against hostile/corrupt length prefixes: frames claiming more
/// than this are rejected with DataLoss before any allocation happens.
inline constexpr uint32_t kDefaultMaxFrameBytes = 256u << 20;  // 256 MiB

/// Transport tuning for distributed mode. Defaults reproduce the
/// untuned behaviour: one connect attempt, blocking I/O, default frame cap.
struct TransportOptions {
  /// Connection attempts before giving up (values < 1 behave as 1).
  /// Retries back off exponentially from `retry_base_delay_ms`, doubling
  /// per attempt up to `retry_max_delay_ms`; each delay is multiplied by a
  /// seeded uniform jitter in [0.5, 1.5). The same backoff schedule drives
  /// both initial connects (clients may start before the listener is
  /// bound) and epoch-based re-joins after a server restart (DESIGN.md
  /// §10), so a fleet reconnecting to a recovered server arrives spread
  /// out, each client re-authenticating to the new session epoch.
  int connect_attempts = 1;
  int retry_base_delay_ms = 20;
  int retry_max_delay_ms = 1000;
  /// Seed of the jitter stream (vary per client for decorrelated retries).
  uint64_t retry_seed = 1;
  /// How many times a DistributedClientHost re-joins after losing its
  /// server connection mid-course (server crash + restart-from-snapshot).
  /// Each re-join reconnects with the backoff above and re-sends join_in
  /// to authenticate against the restarted server's session epoch. 0 (the
  /// default) keeps the old behaviour: a lost connection ends the run.
  int rejoin_attempts = 0;
  /// Socket send/recv timeouts in seconds; 0 keeps fully blocking I/O.
  /// A recv timeout between messages surfaces as DeadlineExceeded
  /// (retryable: the peer is just idle); a timeout mid-frame surfaces as
  /// DataLoss (the stream is truncated and unrecoverable).
  double send_timeout = 0.0;
  double recv_timeout = 0.0;
};

/// TCP transport for distributed mode: the same wire format used by the
/// standalone simulator (comm/codec.h), framed with a 4-byte little-endian
/// length prefix, flows over real sockets. Blocking I/O; one connection
/// per participant pair (clients connect to the server).
///
/// Move-only RAII wrapper over a connected socket.
class TcpConnection {
 public:
  /// Connects to host:port ("127.0.0.1" for local federations).
  static Result<TcpConnection> Connect(const std::string& host, int port);

  /// Connect with seeded exponential backoff and the options' socket
  /// timeouts applied to the resulting connection (self-healing startup:
  /// clients may come up before the server's listener is bound).
  static Result<TcpConnection> ConnectWithRetry(
      const std::string& host, int port, const TransportOptions& options);

  /// Adopts an already-connected file descriptor (from TcpListener).
  explicit TcpConnection(int fd) : fd_(fd) {}
  TcpConnection(TcpConnection&& other) noexcept
      : fd_(other.fd_), max_frame_bytes_(other.max_frame_bytes_) {
    other.fd_ = -1;
  }
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  ~TcpConnection();

  bool valid() const { return fd_ >= 0; }

  /// Encodes and writes one message (length-prefixed). Thread-compatible:
  /// callers must serialize concurrent sends on the same connection.
  Status SendMessage(const Message& msg);

  /// Blocks until a full message arrives. DataLoss with message
  /// "connection closed" on orderly EOF; DataLoss on malformed frames
  /// (length prefix beyond max_frame_bytes, validated before allocating);
  /// DeadlineExceeded when a configured recv timeout expires between
  /// messages (retryable — see TransportOptions::recv_timeout).
  Result<Message> ReceiveMessage();

  /// Applies SO_SNDTIMEO / SO_RCVTIMEO (0 disables the respective one).
  Status SetTimeouts(double send_seconds, double recv_seconds);

  /// Overrides the frame-size cap (testing / small-memory deployments).
  void set_max_frame_bytes(uint32_t limit) { max_frame_bytes_ = limit; }

  /// Half-close: wakes any thread blocked in recv on this connection
  /// without invalidating the descriptor. Teardown of a connection shared
  /// with a reader thread must be Shutdown() -> join the reader ->
  /// Close(): closing while the reader is still in recv races with kernel
  /// descriptor reuse.
  void Shutdown();

  /// Shuts down and closes the socket (idempotent).
  void Close();

 private:
  Status WriteAll(const void* data, size_t size);
  Status ReadAll(void* data, size_t size);

  int fd_ = -1;
  uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

/// Listening socket; Accept yields TcpConnections.
class TcpListener {
 public:
  /// Binds to 127.0.0.1:port; port 0 picks an ephemeral port (see port()).
  static Result<TcpListener> Bind(int port);

  explicit TcpListener(int fd, int port) : fd_(fd), port_(port) {}
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  int port() const { return port_; }

  Result<TcpConnection> Accept();
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_COMM_SOCKET_TRANSPORT_H_
