#ifndef FEDSCOPE_COMM_COMPRESSION_H_
#define FEDSCOPE_COMM_COMPRESSION_H_

#include <cstdint>

#include "fedscope/comm/message.h"
#include "fedscope/nn/model.h"

namespace fedscope {

/// Update-compression operators (message-transform plug-ins, in the spirit
/// of §4.1's operator plug-ins): before sharing, a client may quantize or
/// sparsify its update to cut bandwidth; the receiver decompresses back to
/// a dense StateDict. Both transforms are lossy but unbiased enough for
/// FedAvg-style averaging; tests bound the reconstruction error and the
/// wire-size savings.

// -- uniform 8-bit quantization ---------------------------------------------

/// Encodes each tensor as int8 codes + per-tensor (min, max) range packed
/// into a Payload. Wire cost ~ numel bytes instead of 4*numel.
Payload QuantizeStateDict(const StateDict& state);

/// Reconstructs the dense StateDict (values land on 256-level grids).
Result<StateDict> DequantizeStateDict(const Payload& payload);

// -- top-k sparsification -----------------------------------------------------

/// Keeps only the `keep_frac` fraction of coordinates with the largest
/// magnitude (at least 1 per tensor); the rest become exact zeros. The
/// result is encoded as (indices, values) pairs per tensor.
Payload SparsifyStateDict(const StateDict& state, double keep_frac);

/// Reconstructs the dense StateDict (dropped coordinates are zero).
Result<StateDict> DesparsifyStateDict(const Payload& payload);

/// Approximate wire bytes of a payload (same accounting as
/// Payload::ByteSize; convenience for compression-ratio reporting).
int64_t CompressedBytes(const Payload& payload);

}  // namespace fedscope

#endif  // FEDSCOPE_COMM_COMPRESSION_H_
