#include "fedscope/comm/codec.h"

#include <cstring>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

constexpr uint8_t kMagic[4] = {'F', 'S', 'M', 'G'};
constexpr uint16_t kVersion = 1;
constexpr uint8_t kTagInt = 0;
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagString = 2;

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + size);
  }

 private:
  std::vector<uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& in) : in_(in) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U16(uint16_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool I32(int32_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F32(float* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (pos_ + len > in_.size()) return false;
    s->assign(reinterpret_cast<const char*>(in_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  bool Raw(void* data, size_t size) {
    if (pos_ + size > in_.size()) return false;
    std::memcpy(data, in_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  bool AtEnd() const { return pos_ == in_.size(); }
  size_t remaining() const { return in_.size() - pos_; }

 private:
  const std::vector<uint8_t>& in_;
  size_t pos_ = 0;
};

// Payload keys and message types are names: NUL bytes are rejected at
// decode time so a name can never smuggle an embedded terminator into
// log lines, file paths, or downstream C string APIs.
Status ReadName(Reader* r, const char* what, std::string* name) {
  if (!r->Str(name)) {
    return Status::DataLoss(std::string("truncated ") + what);
  }
  if (name->find('\0') != std::string::npos) {
    return Status::DataLoss(std::string("NUL byte in ") + what);
  }
  return Status::Ok();
}

void WritePayload(const Payload& payload, Writer* w) {
  w->U32(static_cast<uint32_t>(payload.scalars().size()));
  for (const auto& [key, value] : payload.scalars()) {
    w->Str(key);
    if (std::holds_alternative<int64_t>(value)) {
      w->U8(kTagInt);
      w->I64(std::get<int64_t>(value));
    } else if (std::holds_alternative<double>(value)) {
      w->U8(kTagDouble);
      w->F64(std::get<double>(value));
    } else {
      w->U8(kTagString);
      w->Str(std::get<std::string>(value));
    }
  }
  w->U32(static_cast<uint32_t>(payload.tensors().size()));
  for (const auto& [key, tensor] : payload.tensors()) {
    w->Str(key);
    w->U8(static_cast<uint8_t>(tensor.ndim()));
    for (int d = 0; d < tensor.ndim(); ++d) w->I64(tensor.dim(d));
    w->Raw(tensor.data(), tensor.numel() * sizeof(float));
  }
}

Status ReadPayload(Reader* r, Payload* payload) {
  uint32_t n_scalars = 0;
  if (!r->U32(&n_scalars)) return Status::DataLoss("truncated scalar count");
  for (uint32_t i = 0; i < n_scalars; ++i) {
    std::string key;
    FS_RETURN_IF_ERROR(ReadName(r, "scalar key", &key));
    uint8_t tag = 0;
    if (!r->U8(&tag)) return Status::DataLoss("truncated scalar entry");
    switch (tag) {
      case kTagInt: {
        int64_t v = 0;
        if (!r->I64(&v)) return Status::DataLoss("truncated int scalar");
        payload->SetInt(key, v);
        break;
      }
      case kTagDouble: {
        double v = 0.0;
        if (!r->F64(&v)) return Status::DataLoss("truncated double scalar");
        payload->SetDouble(key, v);
        break;
      }
      case kTagString: {
        std::string v;
        if (!r->Str(&v)) return Status::DataLoss("truncated string scalar");
        payload->SetString(key, std::move(v));
        break;
      }
      default:
        return Status::DataLoss("unknown scalar tag " + std::to_string(tag));
    }
  }
  uint32_t n_tensors = 0;
  if (!r->U32(&n_tensors)) return Status::DataLoss("truncated tensor count");
  for (uint32_t i = 0; i < n_tensors; ++i) {
    std::string key;
    FS_RETURN_IF_ERROR(ReadName(r, "tensor name", &key));
    uint8_t ndim = 0;
    if (!r->U8(&ndim)) return Status::DataLoss("truncated tensor header");
    std::vector<int64_t> shape(ndim);
    // Guard the dim product against signed overflow before multiplying:
    // any honest element count fits the buffer, so a product that cannot
    // even be represented is malformed input, not a big tensor.
    constexpr int64_t kMaxNumel = int64_t{1} << 40;
    int64_t numel = 1;
    for (uint8_t d = 0; d < ndim; ++d) {
      if (!r->I64(&shape[d])) return Status::DataLoss("truncated tensor dim");
      if (shape[d] < 0) return Status::DataLoss("negative tensor dim");
      if (shape[d] > 0 && numel > kMaxNumel / shape[d]) {
        return Status::DataLoss("tensor dims overflow element count");
      }
      numel *= shape[d];
    }
    if (static_cast<size_t>(numel) * sizeof(float) > r->remaining()) {
      return Status::DataLoss("tensor data exceeds buffer");
    }
    std::vector<float> data(numel);
    if (!r->Raw(data.data(), numel * sizeof(float))) {
      return Status::DataLoss("truncated tensor data");
    }
    payload->SetTensor(key, Tensor(std::move(shape), std::move(data)));
  }
  return Status::Ok();
}

}  // namespace

size_t EncodedPayloadSize(const Payload& payload) {
  size_t size = sizeof(uint32_t);  // n_scalars
  for (const auto& [key, value] : payload.scalars()) {
    size += sizeof(uint32_t) + key.size() + sizeof(uint8_t);
    if (std::holds_alternative<int64_t>(value)) {
      size += sizeof(int64_t);
    } else if (std::holds_alternative<double>(value)) {
      size += sizeof(double);
    } else {
      size += sizeof(uint32_t) + std::get<std::string>(value).size();
    }
  }
  size += sizeof(uint32_t);  // n_tensors
  for (const auto& [key, tensor] : payload.tensors()) {
    size += sizeof(uint32_t) + key.size() + sizeof(uint8_t) +
            tensor.ndim() * sizeof(int64_t) + tensor.numel() * sizeof(float);
  }
  return size;
}

size_t EncodedMessageSize(const Message& msg) {
  return sizeof(kMagic) + sizeof(uint16_t) + 2 * sizeof(int32_t) +
         sizeof(uint32_t) + msg.msg_type.size() + sizeof(int32_t) +
         sizeof(double) + EncodedPayloadSize(msg.payload);
}

std::vector<uint8_t> EncodeMessage(const Message& msg) {
  std::vector<uint8_t> out;
  out.reserve(EncodedMessageSize(msg));
  Writer w(&out);
  w.Raw(kMagic, sizeof(kMagic));
  w.U16(kVersion);
  w.I32(msg.sender);
  w.I32(msg.receiver);
  w.Str(msg.msg_type);
  w.I32(msg.state);
  w.F64(msg.timestamp);
  WritePayload(msg.payload, &w);
  return out;
}

Result<Message> DecodeMessage(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  uint8_t magic[4];
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("bad magic");
  }
  uint16_t version = 0;
  if (!r.U16(&version)) return Status::DataLoss("truncated version");
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  Message msg;
  if (!r.I32(&msg.sender) || !r.I32(&msg.receiver)) {
    return Status::DataLoss("truncated message header");
  }
  FS_RETURN_IF_ERROR(ReadName(&r, "msg_type", &msg.msg_type));
  if (!r.I32(&msg.state) || !r.F64(&msg.timestamp)) {
    return Status::DataLoss("truncated message header");
  }
  FS_RETURN_IF_ERROR(ReadPayload(&r, &msg.payload));
  if (!r.AtEnd()) return Status::DataLoss("trailing bytes after message");
  return msg;
}

std::vector<uint8_t> EncodePayload(const Payload& payload) {
  std::vector<uint8_t> out;
  out.reserve(EncodedPayloadSize(payload));
  Writer w(&out);
  WritePayload(payload, &w);
  return out;
}

Result<Payload> DecodePayload(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  Payload payload;
  FS_RETURN_IF_ERROR(ReadPayload(&r, &payload));
  if (!r.AtEnd()) return Status::DataLoss("trailing bytes after payload");
  return payload;
}

std::vector<Frame> SplitIntoFrames(const std::vector<uint8_t>& bytes,
                                   size_t max_frame_bytes) {
  FS_CHECK_GT(max_frame_bytes, 0u);
  const size_t count =
      bytes.empty() ? 1
                    : (bytes.size() + max_frame_bytes - 1) / max_frame_bytes;
  std::vector<Frame> frames;
  frames.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Frame frame;
    frame.index = static_cast<uint32_t>(i);
    frame.count = static_cast<uint32_t>(count);
    frame.total_bytes = bytes.size();
    const size_t begin = i * max_frame_bytes;
    const size_t end = std::min(bytes.size(), begin + max_frame_bytes);
    frame.data.assign(bytes.begin() + begin, bytes.begin() + end);
    frames.push_back(std::move(frame));
  }
  return frames;
}

Result<std::vector<uint8_t>> ReassembleFrames(std::vector<Frame> frames) {
  if (frames.empty()) return Status::InvalidArgument("no frames");
  const uint32_t count = frames[0].count;
  const uint64_t total = frames[0].total_bytes;
  if (frames.size() != count) {
    return Status::DataLoss("expected " + std::to_string(count) +
                            " frames, got " + std::to_string(frames.size()));
  }
  std::vector<const Frame*> ordered(count, nullptr);
  for (const Frame& frame : frames) {
    if (frame.count != count || frame.total_bytes != total) {
      return Status::DataLoss("inconsistent frame headers");
    }
    if (frame.index >= count) return Status::DataLoss("frame index range");
    if (ordered[frame.index] != nullptr) {
      return Status::DataLoss("duplicate frame " +
                              std::to_string(frame.index));
    }
    ordered[frame.index] = &frame;
  }
  std::vector<uint8_t> out;
  out.reserve(total);
  for (const Frame* frame : ordered) {
    out.insert(out.end(), frame->data.begin(), frame->data.end());
  }
  if (out.size() != total) {
    return Status::DataLoss("reassembled size mismatch");
  }
  return out;
}

}  // namespace fedscope
