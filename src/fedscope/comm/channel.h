#ifndef FEDSCOPE_COMM_CHANNEL_H_
#define FEDSCOPE_COMM_CHANNEL_H_

#include <deque>
#include <functional>

#include "fedscope/comm/message.h"
#include "fedscope/obs/obs_context.h"

namespace fedscope {

/// Transport abstraction: something messages can be sent into. In the
/// standalone simulator the FedRunner implements this and routes messages
/// through the virtual-time event queue; tests can implement it to capture
/// traffic.
class CommChannel {
 public:
  virtual ~CommChannel() = default;
  virtual void Send(const Message& msg) = 0;
};

/// A channel that queues messages in FIFO order (useful in unit tests and
/// for driving workers directly without a simulator). Optionally passes
/// every message through the wire codec to emulate real serialization
/// (verifying that nothing depends on in-memory object identity).
class QueueChannel : public CommChannel {
 public:
  explicit QueueChannel(bool through_wire = false)
      : through_wire_(through_wire) {}

  void Send(const Message& msg) override;

  /// Attaches observability sinks (borrowed; null restores the no-op
  /// default). Send then counts messages/bytes by message type.
  void set_obs(const ObsContext* obs) { obs_ = obs; }

  bool Empty() const { return queue_.empty(); }
  size_t Size() const { return queue_.size(); }
  /// Pops the oldest message; requires !Empty().
  Message Pop();

 private:
  bool through_wire_;
  const ObsContext* obs_ = nullptr;
  std::deque<Message> queue_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_COMM_CHANNEL_H_
