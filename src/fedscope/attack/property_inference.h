#ifndef FEDSCOPE_ATTACK_PROPERTY_INFERENCE_H_
#define FEDSCOPE_ATTACK_PROPERTY_INFERENCE_H_

#include <vector>

#include "fedscope/nn/model.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// Property-inference attack (paper §4.2, PIA / Melis et al.): the
/// adversary observes a participant's model updates and infers a *dataset
/// property* unrelated to the main task (e.g., "this client's data is
/// dominated by class 0"). The attack trains a meta-classifier on update
/// features from shadow participants whose property is known.

/// Compact feature vector summarizing one update: per-tensor mean, std,
/// L2 norm, min, max (order fixed by the state-dict key order).
std::vector<float> UpdateFeatures(const StateDict& update);

struct PropertyInferenceResult {
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

/// Trains a logistic-regression meta-classifier on (features, property)
/// pairs and reports held-out accuracy. `test_frac` of the examples are
/// held out for scoring.
PropertyInferenceResult RunPropertyInference(
    const std::vector<std::vector<float>>& features,
    const std::vector<int64_t>& property_labels, double test_frac, Rng* rng);

}  // namespace fedscope

#endif  // FEDSCOPE_ATTACK_PROPERTY_INFERENCE_H_
