#ifndef FEDSCOPE_ATTACK_GRADIENT_INVERSION_H_
#define FEDSCOPE_ATTACK_GRADIENT_INVERSION_H_

#include <string>
#include <vector>

#include "fedscope/nn/model.h"
#include "fedscope/util/rng.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// Gradient-inversion privacy attacks (paper §4.2: DLG, iDLG, GradInv):
/// an honest-but-curious server observes a client's update and tries to
/// reconstruct the private training example. Figure 13 uses exactly this
/// to show that DP noise defeats the reconstruction.

/// Captures the parameter gradients of `model` on a batch (what the
/// attacker effectively sees when a client runs one local step:
/// delta = -lr * grad).
StateDict ObserveGradients(Model* model, const Tensor& x,
                           const std::vector<int64_t>& labels);

/// Converts a one-step SGD delta into the gradient the attacker works on.
StateDict DeltaToGradients(const StateDict& delta, double lr);

struct InversionResult {
  Tensor reconstructed_x;
  int64_t inferred_label = -1;
  /// Final gradient-matching objective (iterative attack only).
  double gradient_match_loss = 0.0;
};

/// Analytic iDLG against softmax regression (a single Linear layer named
/// `layer`): the true label is the unique class whose bias gradient is
/// negative, and the example is recovered exactly as
/// x = grad_W[:, c] / grad_b[c]. Requires a single-example gradient.
Result<InversionResult> InvertSoftmaxRegression(const StateDict& grads,
                                                const std::string& layer = "fc");

struct DlgOptions {
  int iterations = 200;
  double lr = 0.5;
  /// Central finite-difference step for the dummy-input gradient.
  double fd_epsilon = 1e-2;
};

/// Iterative DLG against an arbitrary (small) model: optimizes a dummy
/// input to match the observed gradients, inferring the label first via
/// the iDLG sign trick on the final layer (`head_layer`). Uses finite
/// differences for d(match)/d(dummy); keep input dimensions small.
InversionResult InvertGradientIterative(Model* model,
                                        const StateDict& observed,
                                        const std::vector<int64_t>& x_shape,
                                        const std::string& head_layer,
                                        const DlgOptions& options, Rng* rng);

/// Mean squared error between a reconstruction and the ground truth.
double ReconstructionMse(const Tensor& truth, const Tensor& reconstruction);
/// PSNR (dB) given the data range of `truth`.
double ReconstructionPsnr(const Tensor& truth, const Tensor& reconstruction);

}  // namespace fedscope

#endif  // FEDSCOPE_ATTACK_GRADIENT_INVERSION_H_
