#ifndef FEDSCOPE_ATTACK_BACKDOOR_H_
#define FEDSCOPE_ATTACK_BACKDOOR_H_

#include <functional>

#include "fedscope/data/dataset.h"
#include "fedscope/nn/model.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// Backdoor (performance) attacks (paper §4.2): malicious clients poison
/// their data or their updates so that inputs carrying a trigger are
/// classified as an attacker-chosen target class, while main-task accuracy
/// stays high. Implemented as participant plug-ins: data poisoners applied
/// to a client's train split and update poisoners applied to the outgoing
/// delta (Figure 7).

enum class TriggerKind {
  /// BadNets: a solid pixel patch stamped in a corner.
  kBadNets,
  /// Blended: the whole image is alpha-blended with a fixed pattern.
  kBlended,
  /// Label flipping only (no input modification).
  kLabelFlip,
  /// Edge-case backdoor (Wang et al.): out-of-distribution inputs (the
  /// tail of the input space) are *added* to the training set with the
  /// target label; in-distribution accuracy is untouched.
  kEdgeCase,
};

struct BackdoorOptions {
  TriggerKind kind = TriggerKind::kBadNets;
  int64_t target_label = 0;
  /// Fraction of the malicious client's training examples to poison.
  double poison_frac = 0.5;
  /// Side length of the BadNets patch (pixels), stamped at the offset.
  int64_t trigger_size = 2;
  int64_t trigger_offset_h = 0;
  int64_t trigger_offset_w = 0;
  float trigger_value = 3.0f;
  /// Blend strength for kBlended.
  double blend_alpha = 0.2;
  /// Magnitude of the out-of-distribution region for kEdgeCase.
  float edge_scale = 4.0f;
  uint64_t seed = 99;
};

/// Stamps the trigger on one example tensor ([C, H, W] or flat [D]; flat
/// inputs are treated as a single row and the patch covers the leading
/// trigger_size entries).
void ApplyTrigger(Tensor* example, const BackdoorOptions& options);

/// Returns a data poisoner for Client::PoisonTrainData: stamps the trigger
/// onto poison_frac of the examples and relabels them to target_label.
std::function<void(Dataset*)> MakeDataPoisoner(const BackdoorOptions& options);

/// A triggered copy of `clean` with every example stamped and relabeled —
/// the evaluation set for the attack success rate.
Dataset MakeTriggeredTestSet(const Dataset& clean,
                             const BackdoorOptions& options);

/// The kEdgeCase evaluation set: `n` fresh out-of-distribution examples
/// with the per-example shape of `reference`, labeled with the target.
Dataset MakeEdgeCaseSet(const Dataset& reference, int64_t n,
                        const BackdoorOptions& options);

/// Fraction of triggered examples classified as the target label, computed
/// over examples whose true label differs from the target.
double AttackSuccessRate(Model* model, const Dataset& clean,
                         const BackdoorOptions& options);

// -- model-poisoning update poisoners ---------------------------------------

/// Scales the outgoing update by `scale` (model-replacement boosting).
std::function<void(StateDict*)> MakeScalingPoisoner(double scale);

/// Neurotoxin-style masked poisoning: zeroes the top `mask_frac` fraction
/// of the update's coordinates by magnitude, hiding the malicious change in
/// coordinates the benign objective barely uses. (Approximation: the
/// attacker's own update magnitude serves as the proxy for benign-gradient
/// mass; see DESIGN.md.)
std::function<void(StateDict*)> MakeNeurotoxinPoisoner(double mask_frac);

}  // namespace fedscope

#endif  // FEDSCOPE_ATTACK_BACKDOOR_H_
