#include "fedscope/attack/membership.h"

#include <algorithm>
#include <cmath>

#include "fedscope/nn/loss.h"
#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {

std::vector<double> PerExampleLosses(Model* model, const Dataset& data) {
  std::vector<double> losses(data.size());
  if (data.empty()) return losses;
  Tensor probs = Softmax(model->Forward(data.x, /*train=*/false));
  for (int64_t i = 0; i < data.size(); ++i) {
    losses[i] =
        -std::log(std::max(1e-12, (double)probs.at(i, data.labels[i])));
  }
  return losses;
}

double RocAuc(const std::vector<double>& positive_scores,
              const std::vector<double>& negative_scores) {
  FS_CHECK(!positive_scores.empty());
  FS_CHECK(!negative_scores.empty());
  // Mann-Whitney U: fraction of (pos, neg) pairs ranked correctly.
  double wins = 0.0;
  for (double p : positive_scores) {
    for (double n : negative_scores) {
      if (p > n) {
        wins += 1.0;
      } else if (p == n) {
        wins += 0.5;
      }
    }
  }
  return wins / (static_cast<double>(positive_scores.size()) *
                 static_cast<double>(negative_scores.size()));
}

MembershipAttackResult LossThresholdAttack(Model* model,
                                           const Dataset& members,
                                           const Dataset& nonmembers) {
  MembershipAttackResult result;
  auto member_losses = PerExampleLosses(model, members);
  auto nonmember_losses = PerExampleLosses(model, nonmembers);
  if (member_losses.empty() || nonmember_losses.empty()) return result;

  // Members should have LOWER loss; score = -loss.
  std::vector<double> pos(member_losses.size()), neg(nonmember_losses.size());
  for (size_t i = 0; i < pos.size(); ++i) pos[i] = -member_losses[i];
  for (size_t i = 0; i < neg.size(); ++i) neg[i] = -nonmember_losses[i];
  result.auc = RocAuc(pos, neg);

  // Best single-threshold balanced accuracy: predict member iff
  // loss <= threshold; sweep over all observed losses.
  std::vector<double> candidates = member_losses;
  candidates.insert(candidates.end(), nonmember_losses.begin(),
                    nonmember_losses.end());
  std::sort(candidates.begin(), candidates.end());
  for (double threshold : candidates) {
    int64_t tp = 0, tn = 0;
    for (double l : member_losses) {
      if (l <= threshold) ++tp;
    }
    for (double l : nonmember_losses) {
      if (l > threshold) ++tn;
    }
    const double acc =
        0.5 * (static_cast<double>(tp) / member_losses.size() +
               static_cast<double>(tn) / nonmember_losses.size());
    if (acc > result.best_accuracy) {
      result.best_accuracy = acc;
      result.best_threshold = threshold;
    }
  }
  return result;
}

}  // namespace fedscope
