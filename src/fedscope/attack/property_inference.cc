#include "fedscope/attack/property_inference.h"

#include <algorithm>
#include <cmath>

#include "fedscope/core/trainer.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"
#include "fedscope/util/stats.h"

namespace fedscope {

std::vector<float> UpdateFeatures(const StateDict& update) {
  std::vector<float> features;
  for (const auto& [name, tensor] : update) {
    RunningStat stat;
    for (int64_t i = 0; i < tensor.numel(); ++i) stat.Add(tensor.at(i));
    features.push_back(static_cast<float>(stat.mean()));
    features.push_back(static_cast<float>(stat.stddev()));
    features.push_back(static_cast<float>(Norm(tensor)));
    features.push_back(static_cast<float>(stat.min()));
    features.push_back(static_cast<float>(stat.max()));
  }
  return features;
}

PropertyInferenceResult RunPropertyInference(
    const std::vector<std::vector<float>>& features,
    const std::vector<int64_t>& property_labels, double test_frac,
    Rng* rng) {
  FS_CHECK_EQ(features.size(), property_labels.size());
  FS_CHECK_GE(features.size(), 4u);
  const int64_t n = static_cast<int64_t>(features.size());
  const int64_t dim = static_cast<int64_t>(features[0].size());

  // Standardize features (meta-classifier stability).
  std::vector<double> mean(dim, 0.0), std(dim, 1e-9);
  for (const auto& f : features) {
    for (int64_t j = 0; j < dim; ++j) mean[j] += f[j];
  }
  for (auto& m : mean) m /= n;
  for (const auto& f : features) {
    for (int64_t j = 0; j < dim; ++j) {
      std[j] += (f[j] - mean[j]) * (f[j] - mean[j]);
    }
  }
  for (auto& s : std) s = std::sqrt(s / n) + 1e-9;

  Dataset all;
  all.x = Tensor({n, dim});
  all.labels = property_labels;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < dim; ++j) {
      all.x.at(i, j) = static_cast<float>((features[i][j] - mean[j]) /
                                          std[j]);
    }
  }

  auto perm = rng->Permutation(n);
  const int64_t n_test = std::max<int64_t>(1, (int64_t)(test_frac * n));
  std::vector<int64_t> test_idx(perm.begin(), perm.begin() + n_test);
  std::vector<int64_t> train_idx(perm.begin() + n_test, perm.end());
  Dataset train = all.Subset(train_idx);
  Dataset test = all.Subset(test_idx);

  const int64_t classes =
      *std::max_element(property_labels.begin(), property_labels.end()) + 1;
  Rng init_rng(rng->Next());
  Model probe = MakeLogisticRegression(dim, classes, &init_rng);

  TrainConfig config;
  config.lr = 0.3;
  config.local_steps = 300;
  config.batch_size = static_cast<int>(std::min<int64_t>(32, train.size()));
  config.weight_decay = 1e-3;
  GeneralTrainer trainer;
  trainer.Train(&probe, train, config, rng);

  PropertyInferenceResult result;
  result.train_accuracy = EvaluateClassifier(&probe, train).accuracy;
  result.test_accuracy = EvaluateClassifier(&probe, test).accuracy;
  return result;
}

}  // namespace fedscope
