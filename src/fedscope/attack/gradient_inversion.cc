#include "fedscope/attack/gradient_inversion.h"

#include <algorithm>
#include <cmath>

#include "fedscope/nn/loss.h"
#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {

StateDict ObserveGradients(Model* model, const Tensor& x,
                           const std::vector<int64_t>& labels) {
  SoftmaxCrossEntropy loss;
  model->ZeroGrad();
  Tensor logits = model->Forward(x, /*train=*/true);
  loss.Forward(logits, labels);
  model->Backward(loss.Backward());
  StateDict grads;
  for (auto& p : model->Params()) {
    if (p.trainable && p.grad != nullptr) grads[p.name] = *p.grad;
  }
  model->ZeroGrad();
  return grads;
}

StateDict DeltaToGradients(const StateDict& delta, double lr) {
  FS_CHECK_GT(lr, 0.0);
  return SdScale(delta, static_cast<float>(-1.0 / lr));
}

Result<InversionResult> InvertSoftmaxRegression(const StateDict& grads,
                                                const std::string& layer) {
  auto w_it = grads.find(layer + ".weight");
  auto b_it = grads.find(layer + ".bias");
  if (w_it == grads.end() || b_it == grads.end()) {
    return Status::NotFound("gradients for layer '" + layer + "' not found");
  }
  const Tensor& gw = w_it->second;  // [in, classes]
  const Tensor& gb = b_it->second;  // [classes]
  if (gw.ndim() != 2 || gb.ndim() != 1 || gw.dim(1) != gb.dim(0)) {
    return Status::InvalidArgument("unexpected gradient shapes");
  }
  const int64_t classes = gb.dim(0);

  // iDLG label inference: for cross-entropy on one example, grad_b =
  // softmax(z) - onehot(y); only the true class entry is negative.
  int64_t label = -1;
  for (int64_t c = 0; c < classes; ++c) {
    if (gb.at(c) < 0.0f) {
      if (label != -1) {
        return Status::FailedPrecondition(
            "multiple negative bias gradients: not a single-example "
            "gradient");
      }
      label = c;
    }
  }
  if (label == -1) {
    return Status::FailedPrecondition("no negative bias gradient entry");
  }

  // grad_W[:, c] = x * grad_b[c]  =>  x = grad_W[:, c] / grad_b[c].
  // Use the entry with the largest |grad_b| for numerical stability.
  int64_t pivot = 0;
  for (int64_t c = 1; c < classes; ++c) {
    if (std::fabs(gb.at(c)) > std::fabs(gb.at(pivot))) pivot = c;
  }
  if (std::fabs(gb.at(pivot)) < 1e-12) {
    return Status::FailedPrecondition("bias gradient too small to invert");
  }
  InversionResult result;
  result.inferred_label = label;
  result.reconstructed_x = Tensor({gw.dim(0)});
  for (int64_t i = 0; i < gw.dim(0); ++i) {
    result.reconstructed_x.at(i) = gw.at(i, pivot) / gb.at(pivot);
  }
  return result;
}

namespace {

/// Gradient-matching objective between observed and dummy-induced grads.
double MatchLoss(Model* model, const Tensor& dummy_x, int64_t label,
                 const StateDict& observed) {
  StateDict grads = ObserveGradients(model, dummy_x, {label});
  double acc = 0.0;
  for (const auto& [name, g_obs] : observed) {
    auto it = grads.find(name);
    if (it == grads.end()) continue;
    acc += SquaredNorm(Sub(it->second, g_obs));
  }
  return acc;
}

}  // namespace

InversionResult InvertGradientIterative(Model* model,
                                        const StateDict& observed,
                                        const std::vector<int64_t>& x_shape,
                                        const std::string& head_layer,
                                        const DlgOptions& options, Rng* rng) {
  // Infer the label first (iDLG trick on the head layer's bias gradient).
  int64_t label = 0;
  auto b_it = observed.find(head_layer + ".bias");
  if (b_it != observed.end()) {
    const Tensor& gb = b_it->second;
    for (int64_t c = 0; c < gb.numel(); ++c) {
      if (gb.at(c) < gb.at(label)) label = c;
    }
  }

  std::vector<int64_t> batch_shape = x_shape;
  batch_shape.insert(batch_shape.begin(), 1);
  Tensor dummy = Tensor::Randn(batch_shape, rng, 0.5f);

  double loss = MatchLoss(model, dummy, label, observed);
  double step = options.lr;
  for (int iter = 0; iter < options.iterations; ++iter) {
    // Finite-difference gradient of the match loss w.r.t. every pixel.
    Tensor grad(dummy.shape());
    for (int64_t i = 0; i < dummy.numel(); ++i) {
      const float original = dummy.at(i);
      dummy.at(i) = original + static_cast<float>(options.fd_epsilon);
      const double plus = MatchLoss(model, dummy, label, observed);
      dummy.at(i) = original - static_cast<float>(options.fd_epsilon);
      const double minus = MatchLoss(model, dummy, label, observed);
      dummy.at(i) = original;
      grad.at(i) =
          static_cast<float>((plus - minus) / (2.0 * options.fd_epsilon));
    }
    const double gnorm = Norm(grad);
    if (gnorm < 1e-12) break;
    // Backtracking line search: halve the step until the match loss
    // improves (keeps the descent stable without tuning lr per model).
    bool accepted = false;
    for (int attempt = 0; attempt < 12; ++attempt) {
      Tensor candidate = dummy;
      Axpy(&candidate, static_cast<float>(-step), grad);
      const double candidate_loss =
          MatchLoss(model, candidate, label, observed);
      if (candidate_loss < loss) {
        dummy = std::move(candidate);
        loss = candidate_loss;
        step *= 1.5;
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // converged to numerical precision
  }

  InversionResult result;
  result.inferred_label = label;
  result.reconstructed_x = dummy.Reshape(x_shape);
  result.gradient_match_loss = loss;
  return result;
}

double ReconstructionMse(const Tensor& truth, const Tensor& reconstruction) {
  FS_CHECK_EQ(truth.numel(), reconstruction.numel());
  double acc = 0.0;
  for (int64_t i = 0; i < truth.numel(); ++i) {
    const double d = truth.at(i) - reconstruction.at(i);
    acc += d * d;
  }
  return acc / static_cast<double>(truth.numel());
}

double ReconstructionPsnr(const Tensor& truth, const Tensor& reconstruction) {
  double lo = truth.at(0), hi = truth.at(0);
  for (int64_t i = 1; i < truth.numel(); ++i) {
    lo = std::min(lo, (double)truth.at(i));
    hi = std::max(hi, (double)truth.at(i));
  }
  const double range = std::max(hi - lo, 1e-9);
  const double mse = std::max(ReconstructionMse(truth, reconstruction), 1e-12);
  return 10.0 * std::log10(range * range / mse);
}

}  // namespace fedscope
