#ifndef FEDSCOPE_ATTACK_MEMBERSHIP_H_
#define FEDSCOPE_ATTACK_MEMBERSHIP_H_

#include <vector>

#include "fedscope/data/dataset.h"
#include "fedscope/nn/model.h"

namespace fedscope {

/// Membership-inference attack (paper §4.2, Nasr et al.): decide whether a
/// given example was part of a client's training set. The classic black-box
/// signal is the per-example loss — members have systematically lower loss.

struct MembershipAttackResult {
  /// Area under the ROC curve of the (negative) loss score; 0.5 = chance.
  double auc = 0.5;
  /// Best achievable accuracy with a single loss threshold.
  double best_accuracy = 0.5;
  /// The loss threshold achieving best_accuracy.
  double best_threshold = 0.0;
};

/// Per-example cross-entropy losses of `model` on `data`.
std::vector<double> PerExampleLosses(Model* model, const Dataset& data);

/// Runs the loss-threshold attack given known member and non-member sets
/// (the evaluation protocol: the attacker is scored on how well loss
/// separates the two).
MembershipAttackResult LossThresholdAttack(Model* model,
                                           const Dataset& members,
                                           const Dataset& nonmembers);

/// AUC of scores where higher score should indicate the positive class.
double RocAuc(const std::vector<double>& positive_scores,
              const std::vector<double>& negative_scores);

}  // namespace fedscope

#endif  // FEDSCOPE_ATTACK_MEMBERSHIP_H_
