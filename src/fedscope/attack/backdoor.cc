#include "fedscope/attack/backdoor.h"

#include <algorithm>
#include <cmath>

#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

/// Deterministic "random" blend pattern derived from pixel index.
float BlendPattern(int64_t i) {
  return static_cast<float>(std::sin(0.7 * static_cast<double>(i + 1)) * 2.0);
}

}  // namespace

void ApplyTrigger(Tensor* example, const BackdoorOptions& options) {
  switch (options.kind) {
    case TriggerKind::kLabelFlip:
    case TriggerKind::kEdgeCase:
      return;  // input untouched (edge-case poisoning *adds* examples)
    case TriggerKind::kBlended: {
      const float alpha = static_cast<float>(options.blend_alpha);
      for (int64_t i = 0; i < example->numel(); ++i) {
        example->at(i) =
            (1.0f - alpha) * example->at(i) + alpha * BlendPattern(i);
      }
      return;
    }
    case TriggerKind::kBadNets: {
      if (example->ndim() == 3) {
        const int64_t channels = example->dim(0);
        const int64_t height = example->dim(1), width = example->dim(2);
        for (int64_t c = 0; c < channels; ++c) {
          for (int64_t dh = 0; dh < options.trigger_size; ++dh) {
            for (int64_t dw = 0; dw < options.trigger_size; ++dw) {
              const int64_t h = options.trigger_offset_h + dh;
              const int64_t w = options.trigger_offset_w + dw;
              if (h < height && w < width) {
                example->at((c * height + h) * width + w) =
                    options.trigger_value;
              }
            }
          }
        }
      } else {
        // Flat features: stamp the leading trigger_size entries.
        for (int64_t i = 0;
             i < std::min<int64_t>(options.trigger_size, example->numel());
             ++i) {
          example->at(i) = options.trigger_value;
        }
      }
      return;
    }
  }
}

std::function<void(Dataset*)> MakeDataPoisoner(
    const BackdoorOptions& options) {
  return [options](Dataset* data) {
    if (data->empty()) return;
    Rng rng(options.seed);
    const int64_t n_poison =
        static_cast<int64_t>(options.poison_frac * data->size());
    if (options.kind == TriggerKind::kEdgeCase) {
      // Append out-of-distribution examples labeled with the target; the
      // original (in-distribution) data is untouched.
      Dataset edge = MakeEdgeCaseSet(*data, n_poison, options);
      std::vector<int64_t> shape = data->x.shape();
      shape[0] += edge.size();
      Tensor combined(shape);
      for (int64_t i = 0; i < data->size(); ++i) {
        combined.SetSlice(i, data->x.Slice(i));
      }
      for (int64_t i = 0; i < edge.size(); ++i) {
        combined.SetSlice(data->size() + i, edge.x.Slice(i));
      }
      data->x = std::move(combined);
      data->labels.insert(data->labels.end(), edge.labels.begin(),
                          edge.labels.end());
      return;
    }
    auto victims = rng.SampleWithoutReplacement(data->size(), n_poison);
    for (int64_t i : victims) {
      Tensor example = data->x.Slice(i);
      ApplyTrigger(&example, options);
      data->x.SetSlice(i, example);
      data->labels[i] = options.target_label;
    }
  };
}

Dataset MakeEdgeCaseSet(const Dataset& reference, int64_t n,
                        const BackdoorOptions& options) {
  FS_CHECK(!reference.empty());
  Rng rng(options.seed + 1);
  std::vector<int64_t> shape = reference.x.shape();
  shape[0] = n;
  Dataset edge;
  edge.x = Tensor(shape);
  edge.labels.assign(n, options.target_label);
  const int64_t per_example = reference.x.numel() / reference.x.dim(0);
  for (int64_t i = 0; i < n * per_example; ++i) {
    // A consistent rare input region: large alternating-sign pattern,
    // roughly orthogonal to smooth class-mean directions so the backdoor
    // is learnable without colliding with the main task.
    const float sign = (i % 2 == 0) ? 1.0f : -1.0f;
    edge.x.at(i) = sign * options.edge_scale *
                   (1.0f + 0.2f * static_cast<float>(rng.Uniform()));
  }
  return edge;
}

Dataset MakeTriggeredTestSet(const Dataset& clean,
                             const BackdoorOptions& options) {
  Dataset out = clean;
  for (int64_t i = 0; i < out.size(); ++i) {
    Tensor example = out.x.Slice(i);
    ApplyTrigger(&example, options);
    out.x.SetSlice(i, example);
    out.labels[i] = options.target_label;
  }
  return out;
}

double AttackSuccessRate(Model* model, const Dataset& clean,
                         const BackdoorOptions& options) {
  if (options.kind == TriggerKind::kEdgeCase) {
    // Edge-case success: fresh tail inputs classified as the target.
    Dataset edge = MakeEdgeCaseSet(clean, clean.size(), options);
    Tensor scores = model->Forward(edge.x, /*train=*/false);
    auto preds = ArgmaxRows(scores);
    int64_t hits = 0;
    for (int64_t p : preds) {
      if (p == options.target_label) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(preds.size());
  }
  // Restrict to examples whose true class differs from the target;
  // otherwise "success" is conflated with correct classification.
  std::vector<int64_t> eligible;
  for (int64_t i = 0; i < clean.size(); ++i) {
    if (clean.labels[i] != options.target_label) eligible.push_back(i);
  }
  if (eligible.empty()) return 0.0;
  Dataset triggered = MakeTriggeredTestSet(clean.Subset(eligible), options);
  Tensor scores = model->Forward(triggered.x, /*train=*/false);
  auto preds = ArgmaxRows(scores);
  int64_t hits = 0;
  for (int64_t p : preds) {
    if (p == options.target_label) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(preds.size());
}

std::function<void(StateDict*)> MakeScalingPoisoner(double scale) {
  return [scale](StateDict* delta) {
    for (auto& [name, tensor] : *delta) {
      ScaleInPlace(&tensor, static_cast<float>(scale));
    }
  };
}

std::function<void(StateDict*)> MakeNeurotoxinPoisoner(double mask_frac) {
  FS_CHECK_GE(mask_frac, 0.0);
  FS_CHECK_LT(mask_frac, 1.0);
  return [mask_frac](StateDict* delta) {
    // Collect |value| over all coordinates, find the magnitude cutoff for
    // the top mask_frac fraction, and zero everything above it.
    std::vector<float> magnitudes;
    for (const auto& [name, tensor] : *delta) {
      for (int64_t i = 0; i < tensor.numel(); ++i) {
        magnitudes.push_back(std::fabs(tensor.at(i)));
      }
    }
    if (magnitudes.empty() || mask_frac == 0.0) return;
    const size_t cut =
        static_cast<size_t>((1.0 - mask_frac) * magnitudes.size());
    if (cut >= magnitudes.size()) return;
    std::nth_element(magnitudes.begin(), magnitudes.begin() + cut,
                     magnitudes.end());
    const float threshold = magnitudes[cut];
    for (auto& [name, tensor] : *delta) {
      for (int64_t i = 0; i < tensor.numel(); ++i) {
        if (std::fabs(tensor.at(i)) >= threshold) tensor.at(i) = 0.0f;
      }
    }
  };
}

}  // namespace fedscope
