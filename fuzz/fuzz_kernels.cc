// Differential fuzzer for the tensor kernels and the wire codec
// (DESIGN.md §9): tiled vs scalar-reference kernels over random shapes
// (exact equality — the determinism contract), and random + mutated
// codec frames (must return Status, never crash).
//
//   fuzz_kernels [--trials=N] [--seed=S]

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "fedscope/testing/kernel_fuzz.h"
#include "fedscope/util/logging.h"

int main(int argc, char** argv) {
  int trials = 500;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trials=", 0) == 0) {
      trials = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      std::cerr << "usage: fuzz_kernels [--trials=N] [--seed=S]\n";
      return 2;
    }
  }
  fedscope::Logging::set_min_level(fedscope::LogLevel::kWarning);

  const auto kernels = fedscope::testing::FuzzKernels(seed, trials);
  const auto codec = fedscope::testing::FuzzCodec(seed, trials);

  int violations = 0;
  for (const auto* report : {&kernels, &codec}) {
    violations += static_cast<int>(report->violations.size());
    if (!report->violations.empty()) {
      std::cerr << fedscope::testing::FormatViolations(report->violations);
    }
  }
  if (violations > 0) {
    std::cerr << "FAIL: " << violations << " violations; repro: fuzz_kernels"
              << " --trials=" << trials << " --seed=" << seed << "\n";
    return 1;
  }
  std::cout << "OK: " << kernels.trials << " kernel trials + "
            << codec.trials << " codec trials, 0 violations (seed " << seed
            << ")\n";
  return 0;
}
