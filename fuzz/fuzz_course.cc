// Deterministic course fuzzer (DESIGN.md §9): draws random valid courses
// from the strategy × plug-in lattice, runs every invariant oracle on
// each, and on the first failure shrinks the spec by config-field
// bisection and prints a one-line repro:
//
//   fuzz_course --trials=200 --seed=1 [--distributed_every=25]
//               [--out=failure.txt]
//   fuzz_course --config="seed=7,strategy=async_goal,..."   # replay one
//   fuzz_course --config="..." --threads=4   # replay under the threaded
//                                            # execution backend
//
// Exit code 0 = every trial passed; 1 = invariant violation (repro
// printed and, with --out, written to a file for CI artifact upload).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "fedscope/testing/course_gen.h"
#include "fedscope/testing/oracles.h"
#include "fedscope/testing/shrink.h"
#include "fedscope/util/logging.h"

namespace {

using fedscope::testing::CheckCourse;
using fedscope::testing::CourseGen;
using fedscope::testing::CourseSpec;
using fedscope::testing::OracleOptions;
using fedscope::testing::Violation;

struct Args {
  int trials = 200;
  uint64_t seed = 1;
  std::string config;   // non-empty: replay this one spec instead
  std::string out;      // non-empty: write failing repro line here
  int distributed_every = 2;  // every Nth eligible trial runs the TCP diff
  int threads = 0;  // > 0: run every base oracle pass under kThreaded
  bool no_shrink = false;
  bool print_specs = false;  // print each course line before running it
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "trials", &value)) {
      args->trials = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      args->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "config", &value)) {
      args->config = value;
    } else if (ParseFlag(arg, "out", &value)) {
      args->out = value;
    } else if (ParseFlag(arg, "distributed_every", &value)) {
      args->distributed_every = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      args->threads = std::atoi(value.c_str());
    } else if (arg == "--no_shrink") {
      args->no_shrink = true;
    } else if (arg == "--print_specs") {
      args->print_specs = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: fuzz_course [--trials=N] [--seed=S] "
                   "[--config=LINE] [--out=FILE] [--distributed_every=N] "
                   "[--threads=N] [--no_shrink]\n";
      return false;
    }
  }
  return true;
}

/// Runs one spec through every oracle; on failure prints the violations
/// and the one-line repro (shrinking first unless disabled).
int RunSpec(const CourseSpec& spec, const OracleOptions& options,
            const Args& args) {
  std::vector<Violation> violations = CheckCourse(spec, options);
  if (violations.empty()) return 0;

  std::cerr << "FAIL seed=" << spec.seed << "\n"
            << fedscope::testing::FormatViolations(violations);

  CourseSpec repro = spec;
  if (!args.no_shrink) {
    const auto result = fedscope::testing::ShrinkCourse(
        spec,
        [&options](const CourseSpec& candidate) {
          return !CheckCourse(candidate, options).empty();
        });
    repro = result.spec;
    std::cerr << "shrunk: " << result.fields_reset << " fields reset in "
              << result.evals << " evals\n";
  }

  const std::string line =
      "--seed=" + std::to_string(repro.seed) + " --config=\"" +
      repro.ToString() + "\"";
  std::cerr << "repro: fuzz_course " << line << "\n";
  if (!args.out.empty()) {
    std::ofstream out(args.out);
    out << repro.ToString() << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  // Courses log per-round chatter at Info; fuzzing runs hundreds of them.
  fedscope::Logging::set_min_level(fedscope::LogLevel::kWarning);

  if (!args.config.empty()) {
    auto spec = CourseSpec::FromString(args.config);
    if (!spec.ok()) {
      std::cerr << "bad --config: " << spec.status().ToString() << "\n";
      return 2;
    }
    OracleOptions options;
    options.run_distributed =
        fedscope::testing::DistributedEligible(spec.value());
    options.exec_threads = args.threads;
    const int rc = RunSpec(spec.value(), options, args);
    std::cout << (rc == 0 ? "OK" : "FAIL") << " (1 course replayed)\n";
    return rc;
  }

  int eligible_seen = 0;
  for (int t = 0; t < args.trials; ++t) {
    const CourseSpec spec = CourseGen::Sample(args.seed + static_cast<uint64_t>(t));
    if (args.print_specs) {
      std::cout << "trial " << t << ": " << spec.ToString() << std::endl;
    }
    OracleOptions options;
    options.exec_threads = args.threads;
    if (fedscope::testing::DistributedEligible(spec)) {
      ++eligible_seen;
      // The first eligible trial always runs the TCP differential, then
      // every Nth (eligibility is rare in the lattice — see
      // DistributedEligible).
      options.run_distributed =
          args.distributed_every > 0 &&
          (eligible_seen - 1) % args.distributed_every == 0;
    }
    const int rc = RunSpec(spec, options, args);
    if (rc != 0) {
      std::cerr << "after " << (t + 1) << " trials\n";
      return rc;
    }
    if ((t + 1) % 50 == 0) {
      std::cout << "  ..." << (t + 1) << "/" << args.trials
                << " courses passed\n";
    }
  }
  std::cout << "OK: " << args.trials << " courses, 0 invariant violations "
            << "(seed " << args.seed << ", " << eligible_seen
            << " distributed-eligible)\n";
  return 0;
}
